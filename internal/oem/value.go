package oem

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value types an OEM object can carry. The Object
// Exchange Model deliberately has a small, weak type system: a value is
// either atomic (string, integer, real, boolean, or raw bytes) or a set of
// subobjects. There are no classes, methods, or inheritance.
type Kind int

const (
	// KindSet marks an object whose value is a set of subobjects.
	KindSet Kind = iota
	// KindString marks a string-valued object.
	KindString
	// KindInt marks an integer-valued object.
	KindInt
	// KindFloat marks a real-valued object.
	KindFloat
	// KindBool marks a boolean-valued object.
	KindBool
	// KindBytes marks an uninterpreted byte-string value.
	KindBytes
)

var kindNames = [...]string{
	KindSet:    "set",
	KindString: "string",
	KindInt:    "integer",
	KindFloat:  "real",
	KindBool:   "boolean",
	KindBytes:  "bytes",
}

// String returns the OEM type name used in the textual object format,
// e.g. "string" or "set".
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindFromName maps a textual OEM type name to its Kind. It accepts the
// names the paper uses ("string", "integer", "set", …) plus common
// abbreviations ("int", "str", "float", "bool").
func KindFromName(name string) (Kind, bool) {
	switch strings.ToLower(name) {
	case "set":
		return KindSet, true
	case "string", "str":
		return KindString, true
	case "integer", "int":
		return KindInt, true
	case "real", "float", "double":
		return KindFloat, true
	case "boolean", "bool":
		return KindBool, true
	case "bytes", "binary":
		return KindBytes, true
	}
	return 0, false
}

// Value is the value carried by an OEM object: one of the atomic types or
// a set of subobjects. Values are immutable once constructed; Set values
// hold pointers to subobjects, so "mutation" happens by building new
// objects.
type Value interface {
	// Kind reports which concrete value this is.
	Kind() Kind
	// Equal reports deep structural equality with another value.
	// Object identity (oids) inside sets is ignored; two sets are equal
	// when they contain structurally equal members, order-insensitively.
	Equal(Value) bool
	// String renders the value in the textual OEM format: strings are
	// single-quoted, sets render their member oids in braces.
	String() string
}

// String is a string-valued OEM atomic value.
type String string

// Int is an integer-valued OEM atomic value.
type Int int64

// Float is a real-valued OEM atomic value.
type Float float64

// Bool is a boolean-valued OEM atomic value.
type Bool bool

// Bytes is an uninterpreted binary OEM atomic value.
type Bytes []byte

// Set is a set of subobjects. Although represented as a slice for cheap
// iteration, its semantics are a set: Equal is order-insensitive, and the
// printer renders members in insertion order.
type Set []*Object

// Kind implements Value.
func (String) Kind() Kind { return KindString }

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Kind implements Value.
func (Bytes) Kind() Kind { return KindBytes }

// Kind implements Value.
func (Set) Kind() Kind { return KindSet }

// Equal implements Value. Numeric values of different kinds compare equal
// when they denote the same number (3 == 3.0), mirroring the loose typing
// of OEM sources.
func (s String) Equal(o Value) bool {
	t, ok := o.(String)
	return ok && s == t
}

// Equal implements Value.
func (i Int) Equal(o Value) bool {
	switch t := o.(type) {
	case Int:
		return i == t
	case Float:
		return float64(i) == float64(t)
	}
	return false
}

// Equal implements Value.
func (f Float) Equal(o Value) bool {
	switch t := o.(type) {
	case Float:
		return f == t
	case Int:
		return float64(f) == float64(t)
	}
	return false
}

// Equal implements Value.
func (b Bool) Equal(o Value) bool {
	t, ok := o.(Bool)
	return ok && b == t
}

// Equal implements Value.
func (b Bytes) Equal(o Value) bool {
	t, ok := o.(Bytes)
	if !ok || len(b) != len(t) {
		return false
	}
	for i := range b {
		if b[i] != t[i] {
			return false
		}
	}
	return true
}

// Equal implements Value. Two sets are equal when there is a perfect
// matching between their members under structural object equality. The
// check first compares multisets of structural hashes, then verifies with
// a greedy matching among hash-equal members, which is exact because
// structurally equal objects always hash equally.
func (s Set) Equal(o Value) bool {
	t, ok := o.(Set)
	if !ok || len(s) != len(t) {
		return false
	}
	if len(s) == 0 {
		return true
	}
	// Group the right side by structural hash, then consume matches.
	byHash := make(map[uint64][]*Object, len(t))
	for _, obj := range t {
		h := obj.structuralHash()
		byHash[h] = append(byHash[h], obj)
	}
	for _, obj := range s {
		h := obj.structuralHash()
		cands := byHash[h]
		found := -1
		for i, cand := range cands {
			if cand != nil && obj.StructuralEqual(cand) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		cands[found] = nil
	}
	return true
}

// String implements Value using single-quoted text with backslash escapes,
// matching the paper's examples ('CS', 'Joe Chung').
func (s String) String() string { return QuoteAtom(string(s)) }

// String implements Value.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// String implements Value. Integral floats keep a trailing ".0" so they
// round-trip as reals rather than integers.
func (f Float) String() string {
	v := float64(f)
	if v == math.Trunc(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String implements Value.
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// String implements Value, rendering bytes as a hex literal 0x….
func (b Bytes) String() string {
	var sb strings.Builder
	sb.WriteString("0x")
	const hex = "0123456789abcdef"
	for _, c := range b {
		sb.WriteByte(hex[c>>4])
		sb.WriteByte(hex[c&0xf])
	}
	return sb.String()
}

// String implements Value, rendering the member oids as the paper does:
// {&141, &142}.
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, obj := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(string(obj.OID))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Labels returns the distinct labels of the set's members, sorted. Useful
// for schema exploration (the paper's "retrieve schema information"
// feature).
func (s Set) Labels() []string {
	seen := make(map[string]bool, len(s))
	var out []string
	for _, obj := range s {
		if !seen[obj.Label] {
			seen[obj.Label] = true
			out = append(out, obj.Label)
		}
	}
	sort.Strings(out)
	return out
}

// WithLabel returns the members carrying the given label, preserving order.
func (s Set) WithLabel(label string) []*Object {
	var out []*Object
	for _, obj := range s {
		if obj.Label == label {
			out = append(out, obj)
		}
	}
	return out
}

// First returns the first member with the given label, or nil.
func (s Set) First(label string) *Object {
	for _, obj := range s {
		if obj.Label == label {
			return obj
		}
	}
	return nil
}

// QuoteAtom renders a string as a single-quoted OEM atom, escaping quotes,
// backslashes, and control characters.
func QuoteAtom(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'':
			sb.WriteString(`\'`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}

// Atom converts a Go value into the corresponding OEM atomic Value.
// Supported inputs: string, int, int64, float64, bool, []byte, and any
// Value (returned unchanged). It panics on other types; use it for
// literals in tests and examples.
func Atom(v any) Value {
	switch t := v.(type) {
	case Value:
		return t
	case string:
		return String(t)
	case int:
		return Int(t)
	case int64:
		return Int(t)
	case float64:
		return Float(t)
	case bool:
		return Bool(t)
	case []byte:
		return Bytes(t)
	}
	panic(fmt.Sprintf("oem.Atom: unsupported type %T", v))
}

// CompareAtoms orders two atomic values. It returns <0, 0, >0 like
// strings.Compare, and false when the two values are not comparable
// (different non-numeric kinds, or either is a set). Numbers compare
// numerically across Int/Float; strings lexically; booleans false<true.
func CompareAtoms(a, b Value) (int, bool) {
	switch x := a.(type) {
	case String:
		y, ok := b.(String)
		if !ok {
			return 0, false
		}
		return strings.Compare(string(x), string(y)), true
	case Int:
		switch y := b.(type) {
		case Int:
			switch {
			case x < y:
				return -1, true
			case x > y:
				return 1, true
			}
			return 0, true
		case Float:
			return compareFloats(float64(x), float64(y)), true
		}
		return 0, false
	case Float:
		switch y := b.(type) {
		case Int:
			return compareFloats(float64(x), float64(y)), true
		case Float:
			return compareFloats(float64(x), float64(y)), true
		}
		return 0, false
	case Bool:
		y, ok := b.(Bool)
		if !ok {
			return 0, false
		}
		xi, yi := 0, 0
		if x {
			xi = 1
		}
		if y {
			yi = 1
		}
		return xi - yi, true
	case Bytes:
		y, ok := b.(Bytes)
		if !ok {
			return 0, false
		}
		return strings.Compare(string(x), string(y)), true
	}
	return 0, false
}

func compareFloats(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}
