package oem

import (
	"reflect"
	"sync"
	"testing"
)

func TestIDGenUnique(t *testing.T) {
	g := NewIDGen("m")
	seen := make(map[OID]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]OID, 200)
			for i := range local {
				local[i] = g.Next()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, oid := range local {
				if seen[oid] {
					t.Errorf("duplicate oid %s", oid)
				}
				seen[oid] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != 1600 {
		t.Fatalf("generated %d unique oids, want 1600", len(seen))
	}
	if seen[""] {
		t.Fatal("generated a nil oid")
	}
}

func TestAssignOIDs(t *testing.T) {
	o := NewSet("", "a", New("", "b", 1), NewSet("&keep", "c", New("", "d", 2)))
	AssignOIDs(o, NewIDGen("x"))
	o.Walk(func(obj *Object, _ int) bool {
		if obj.OID == NilOID {
			t.Errorf("object %s still has no oid", obj.Label)
		}
		return true
	})
	if o.Sub("c").OID != "&keep" {
		t.Fatal("AssignOIDs overwrote an existing oid")
	}
}

func TestStoreAddLookup(t *testing.T) {
	s := NewStore("w")
	p := personP1()
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TotalObjects() != 5 {
		t.Fatalf("TotalObjects = %d", s.TotalObjects())
	}
	got, ok := s.Lookup("&n1")
	if !ok || got.Label != "name" {
		t.Fatalf("Lookup(&n1) = %v,%v", got, ok)
	}
	if _, ok := s.Lookup("&zzz"); ok {
		t.Fatal("Lookup of absent oid succeeded")
	}
	// Duplicate oid rejected.
	if err := s.Add(New("&n1", "other", 1)); err == nil {
		t.Fatal("duplicate oid accepted")
	}
	// Auto-assignment of missing oids.
	anon := NewSet("", "person", New("", "name", "Sue"))
	if err := s.Add(anon); err != nil {
		t.Fatal(err)
	}
	if anon.OID == NilOID || anon.Sub("name").OID == NilOID {
		t.Fatal("store did not assign oids")
	}
	tops := s.TopLevel()
	if len(tops) != 2 || tops[0] != p {
		t.Fatal("TopLevel order or content wrong")
	}
}

func TestStoreLabelsAndClear(t *testing.T) {
	s := NewStore("w")
	s.MustAdd(
		NewSet("", "person", New("", "name", "A")),
		NewSet("", "employee"),
		NewSet("", "person"),
	)
	if got := s.Labels(); !reflect.DeepEqual(got, []string{"employee", "person"}) {
		t.Fatalf("Labels = %v", got)
	}
	s.Clear()
	if s.Len() != 0 || s.TotalObjects() != 0 {
		t.Fatal("Clear left objects behind")
	}
	// Generator continues: new oids differ from old ones.
	a := NewSet("", "x")
	s.MustAdd(a)
	if a.OID == "&w1" {
		// first Add consumed some ids, so &w1 must not be reused
		t.Fatal("oid reused after Clear")
	}
}

func TestStoreDedupStructural(t *testing.T) {
	s := NewStore("w")
	mk := func() *Object {
		return NewSet("", "person", New("", "name", "Joe"), New("", "dept", "CS"))
	}
	other := NewSet("", "person", New("", "name", "Sue"))
	s.MustAdd(mk(), mk(), other, mk())
	dropped := s.DedupStructural()
	if dropped != 2 {
		t.Fatalf("dropped %d duplicates, want 2", dropped)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after dedup = %d", s.Len())
	}
	// Index entries of dropped objects are gone, survivors remain.
	if s.TotalObjects() != 3+2 {
		t.Fatalf("TotalObjects after dedup = %d", s.TotalObjects())
	}
	for _, top := range s.TopLevel() {
		if _, ok := s.Lookup(top.OID); !ok {
			t.Fatalf("surviving top-level %s missing from index", top.OID)
		}
	}
}

func TestStoreConcurrentReaders(t *testing.T) {
	s := NewStore("w")
	for i := 0; i < 50; i++ {
		s.MustAdd(NewSet("", "person", New("", "n", i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if s.Len() != 50 {
					t.Error("Len changed under readers")
					return
				}
				_ = s.TopLevel()
				_ = s.Labels()
			}
		}()
	}
	wg.Wait()
}
