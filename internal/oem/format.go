package oem

import (
	"fmt"
	"io"
	"strings"
)

// Style selects a layout for the textual OEM object format.
type Style int

const (
	// StyleFlat prints each object on its own line, with set values
	// listing member oids and subobjects printed below at one deeper
	// indentation level. This is the layout of the paper's Figures 2.2
	// and 2.3.
	StyleFlat Style = iota
	// StyleNested prints set values inline with their subobjects nested
	// inside the braces, which is denser and needs no oid cross
	// references.
	StyleNested
)

// Formatter renders OEM objects in the textual format. The zero value is
// ready to use and prints StyleFlat with two-space indentation, matching
// the paper's figures.
type Formatter struct {
	// Style selects flat (paper figure) or nested layout.
	Style Style
	// Indent is the per-level indentation; two spaces when empty.
	Indent string
	// OmitTypes drops the type field, printing <oid, label, value>
	// tuples. Types are recoverable from the value syntax.
	OmitTypes bool

	tmpOID int
}

// Format renders the objects to w, followed by a ";" terminator line as in
// the paper's figures. In the flat style, oid assignment and definition
// printing are shared across the whole call: an object reachable from
// several parents (or several of the given roots) is defined once and
// referenced by oid everywhere else, so the output reparses cleanly —
// the parser rejects duplicate definitions — and sharing survives a
// round trip.
func (f *Formatter) Format(w io.Writer, objs ...*Object) error {
	assigned := make(map[*Object]OID)
	printed := make(map[*Object]bool)
	for _, obj := range objs {
		if err := f.formatOne(w, obj, 0, assigned, printed); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, ";\n")
	return err
}

// FormatString renders the objects to a string.
func (f *Formatter) FormatString(objs ...*Object) string {
	var sb strings.Builder
	f.Format(&sb, objs...) // strings.Builder never errors
	return sb.String()
}

// Format renders objects in the default flat, paper-figure style.
func Format(objs ...*Object) string {
	var f Formatter
	return f.FormatString(objs...)
}

func (f *Formatter) indent() string {
	if f.Indent == "" {
		return "  "
	}
	return f.Indent
}

// displayOID returns the object's oid, inventing a stable temporary one
// for unassigned objects so flat cross references still resolve.
func (f *Formatter) displayOID(o *Object, assigned map[*Object]OID) OID {
	if o.OID != NilOID {
		return o.OID
	}
	if oid, ok := assigned[o]; ok {
		return oid
	}
	f.tmpOID++
	oid := OID(fmt.Sprintf("&tmp%d", f.tmpOID))
	assigned[o] = oid
	return oid
}

func (f *Formatter) formatOne(w io.Writer, obj *Object, depth int, assigned map[*Object]OID, printed map[*Object]bool) error {
	switch f.Style {
	case StyleNested:
		if err := f.writeNested(w, obj, depth, assigned); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\n")
		return err
	default:
		return f.writeFlat(w, obj, depth, assigned, printed)
	}
}

func (f *Formatter) writeFlat(w io.Writer, obj *Object, depth int, assigned map[*Object]OID, printed map[*Object]bool) error {
	// An already-defined object (a shared subobject, or a cycle) is only
	// ever referenced by oid; printing it again would be a duplicate
	// definition.
	if printed[obj] {
		return nil
	}
	printed[obj] = true
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString(f.indent())
	}
	sb.WriteByte('<')
	sb.WriteString(string(f.displayOID(obj, assigned)))
	sb.WriteString(", ")
	sb.WriteString(obj.Label)
	if !f.OmitTypes {
		sb.WriteString(", ")
		sb.WriteString(obj.Kind().String())
	}
	sb.WriteString(", ")
	if subs, ok := obj.Value.(Set); ok {
		sb.WriteByte('{')
		for i, sub := range subs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(string(f.displayOID(sub, assigned)))
		}
		sb.WriteByte('}')
	} else if obj.Value == nil {
		sb.WriteString("{}")
	} else {
		sb.WriteString(obj.Value.String())
	}
	sb.WriteString(">\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	for _, sub := range obj.Subobjects() {
		if err := f.writeFlat(w, sub, depth+1, assigned, printed); err != nil {
			return err
		}
	}
	return nil
}

func (f *Formatter) writeNested(w io.Writer, obj *Object, depth int, assigned map[*Object]OID) error {
	pad := strings.Repeat(f.indent(), depth)
	var sb strings.Builder
	sb.WriteString(pad)
	sb.WriteByte('<')
	sb.WriteString(string(f.displayOID(obj, assigned)))
	sb.WriteString(", ")
	sb.WriteString(obj.Label)
	if !f.OmitTypes {
		sb.WriteString(", ")
		sb.WriteString(obj.Kind().String())
	}
	sb.WriteString(", ")
	subs, isSet := obj.Value.(Set)
	if !isSet && obj.Value != nil {
		sb.WriteString(obj.Value.String())
		sb.WriteByte('>')
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if len(subs) == 0 {
		sb.WriteString("{}>")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	sb.WriteString("{\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	for i, sub := range subs {
		if err := f.writeNested(w, sub, depth+1, assigned); err != nil {
			return err
		}
		sep := "\n"
		if i < len(subs)-1 {
			sep = ",\n"
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s}>", pad)
	return err
}
