package oem

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// person builds the paper's Figure 2.3 &p1 object.
func personP1() *Object {
	return NewSet("&p1", "person",
		New("&n1", "name", "Joe Chung"),
		New("&d1", "dept", "CS"),
		New("&rel1", "relation", "employee"),
		New("&elm1", "e_mail", "chung@cs"),
	)
}

func TestObjectAccessors(t *testing.T) {
	p := personP1()
	if p.Kind() != KindSet || p.IsAtomic() {
		t.Fatal("person should be a set object")
	}
	if got := len(p.Subobjects()); got != 4 {
		t.Fatalf("Subobjects() len = %d", got)
	}
	name := p.Sub("name")
	if name == nil {
		t.Fatal("Sub(name) = nil")
	}
	if s, ok := name.AtomString(); !ok || s != "Joe Chung" {
		t.Fatalf("AtomString = %q,%v", s, ok)
	}
	if _, ok := name.AtomInt(); ok {
		t.Fatal("AtomInt on a string should fail")
	}
	year := New("", "year", 3)
	if n, ok := year.AtomInt(); !ok || n != 3 {
		t.Fatalf("AtomInt = %d,%v", n, ok)
	}
	if !year.IsAtomic() || year.Kind() != KindInt {
		t.Fatal("year should be an atomic integer")
	}
	if p.Sub("nope") != nil {
		t.Fatal("Sub on absent label should be nil")
	}
}

func TestEmptyValueIsEmptySet(t *testing.T) {
	o := &Object{Label: "x"}
	if o.Kind() != KindSet {
		t.Fatal("nil value should present as set")
	}
	if o.Subobjects() != nil {
		t.Fatal("nil value has no subobjects")
	}
	e := NewSet("", "x")
	if !o.StructuralEqual(e) || !e.StructuralEqual(o) {
		t.Fatal("nil value should equal explicit empty set")
	}
}

func TestStructuralEqualIgnoresOIDs(t *testing.T) {
	a := personP1()
	b := a.Clone()
	b.Walk(func(o *Object, _ int) bool { o.OID = NilOID; return true })
	if !a.StructuralEqual(b) {
		t.Fatal("oids must not affect structural equality")
	}
	// Reordered subobjects are still equal.
	subs := b.Subobjects()
	subs[0], subs[3] = subs[3], subs[0]
	if !a.StructuralEqual(b) {
		t.Fatal("subobject order must not affect structural equality")
	}
	// Different label breaks it.
	c := a.Clone()
	c.Label = "human"
	if a.StructuralEqual(c) {
		t.Fatal("different labels should not be equal")
	}
	// Different nested value breaks it.
	d := a.Clone()
	d.Sub("dept").Value = String("EE")
	if a.StructuralEqual(d) {
		t.Fatal("different nested value should not be equal")
	}
	if a.StructuralEqual(nil) {
		t.Fatal("object should not equal nil")
	}
	if !a.StructuralEqual(a) {
		t.Fatal("object should equal itself")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := personP1()
	b := a.Clone()
	b.Sub("dept").Value = String("EE")
	if got, _ := a.Sub("dept").AtomString(); got != "CS" {
		t.Fatal("mutating a clone leaked into the original")
	}
	if b.OID != a.OID {
		t.Fatal("Clone should preserve oids")
	}
	var nilObj *Object
	if nilObj.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

func TestWalkOrderAndPruning(t *testing.T) {
	root := NewSet("&r", "root",
		NewSet("&a", "a", New("&a1", "a1", 1)),
		New("&b", "b", 2),
	)
	var seen []string
	root.Walk(func(o *Object, depth int) bool {
		seen = append(seen, o.Label)
		return o.Label != "a" // prune below a
	})
	want := []string{"root", "a", "b"}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("walk visited %v, want %v", seen, want)
	}
	var depths []int
	root.Walk(func(o *Object, depth int) bool {
		depths = append(depths, depth)
		return true
	})
	if !reflect.DeepEqual(depths, []int{0, 1, 2, 1}) {
		t.Fatalf("depths = %v", depths)
	}
}

func TestDepthSizeFind(t *testing.T) {
	p := personP1()
	if p.Depth() != 2 {
		t.Fatalf("Depth = %d", p.Depth())
	}
	if p.Size() != 5 {
		t.Fatalf("Size = %d", p.Size())
	}
	deep := NewSet("", "l0", NewSet("", "l1", NewSet("", "l2", New("", "leaf", 1))))
	if deep.Depth() != 4 {
		t.Fatalf("deep Depth = %d", deep.Depth())
	}
	if got := deep.Find("leaf"); len(got) != 1 {
		t.Fatalf("Find(leaf) found %d", len(got))
	}
	if got := deep.Find("l0"); len(got) != 1 {
		t.Fatal("Find should include the root itself")
	}
	var nilObj *Object
	if nilObj.Depth() != 0 || nilObj.Size() != 0 {
		t.Fatal("nil object depth/size should be 0")
	}
}

func TestValidate(t *testing.T) {
	if err := personP1().Validate(); err != nil {
		t.Fatalf("valid object rejected: %v", err)
	}
	bad := NewSet("&x", "x", &Object{Label: ""})
	if err := bad.Validate(); err == nil {
		t.Fatal("empty label should be rejected")
	}
	// Cycle.
	a := NewSet("&a", "a")
	b := NewSet("&b", "b", a)
	a.Value = Set{b}
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
	// Shared (diamond) substructure is fine — only cycles fail.
	shared := New("&s", "s", 1)
	diamond := NewSet("&d", "d", NewSet("&l", "l", shared), NewSet("&r", "r", shared))
	if err := diamond.Validate(); err != nil {
		t.Fatalf("diamond sharing should validate: %v", err)
	}
}

func TestObjectString(t *testing.T) {
	o := New("&12", "department", "CS")
	if got := o.String(); got != "<&12, department, string, 'CS'>" {
		t.Fatalf("String() = %q", got)
	}
	s := NewSet("&1", "person", New("&2", "name", "Al"))
	if got := s.String(); got != "<&1, person, set, {&2}>" {
		t.Fatalf("String() = %q", got)
	}
	noOID := New("", "year", 3)
	if got := noOID.String(); got != "<year, integer, 3>" {
		t.Fatalf("String() = %q", got)
	}
	var nilObj *Object
	if nilObj.String() != "<nil>" {
		t.Fatal("nil object String")
	}
}

// randomObject builds a random OEM tree for property tests.
func randomObject(r *rand.Rand, depth int) *Object {
	labels := []string{"person", "name", "dept", "year", "e_mail", "x", "rel"}
	label := labels[r.Intn(len(labels))]
	if depth <= 0 || r.Intn(3) > 0 {
		switch r.Intn(4) {
		case 0:
			return New("", label, r.Intn(100))
		case 1:
			return New("", label, r.Float64())
		case 2:
			return New("", label, strings.Repeat("ab", r.Intn(4)))
		default:
			return New("", label, r.Intn(2) == 0)
		}
	}
	n := r.Intn(4)
	subs := make([]*Object, n)
	for i := range subs {
		subs[i] = randomObject(r, depth-1)
	}
	return NewSet("", label, subs...)
}

func TestPropStructuralEqualReflexiveAndHashConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		o := randomObject(r, 3)
		if !o.StructuralEqual(o) {
			t.Fatalf("object not equal to itself: %v", o)
		}
		c := o.Clone()
		if !o.StructuralEqual(c) {
			t.Fatalf("object not equal to its clone: %v", o)
		}
		if o.StructuralHash() != c.StructuralHash() {
			t.Fatalf("clone hash differs: %v", o)
		}
	}
}

func TestPropShuffleInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		o := randomObject(r, 3)
		c := o.Clone()
		// Shuffle every subobject set in the clone.
		c.Walk(func(obj *Object, _ int) bool {
			subs := obj.Subobjects()
			r.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
			return true
		})
		if !o.StructuralEqual(c) {
			t.Fatalf("shuffled clone not equal:\n%v\n%v", Format(o), Format(c))
		}
		if o.StructuralHash() != c.StructuralHash() {
			t.Fatalf("shuffled clone hash differs")
		}
	}
}

func TestPropEqualityImpliesHashEquality(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	objs := make([]*Object, 120)
	for i := range objs {
		objs[i] = randomObject(r, 2)
	}
	for _, a := range objs {
		for _, b := range objs {
			if a.StructuralEqual(b) && a.StructuralHash() != b.StructuralHash() {
				t.Fatalf("equal objects, unequal hashes:\n%s\n%s", Format(a), Format(b))
			}
		}
	}
}

func TestPropEqualitySymmetricTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	objs := make([]*Object, 60)
	for i := range objs {
		objs[i] = randomObject(r, 2)
	}
	for _, a := range objs {
		for _, b := range objs {
			if a.StructuralEqual(b) != b.StructuralEqual(a) {
				t.Fatal("equality not symmetric")
			}
		}
	}
	for _, a := range objs {
		for _, b := range objs {
			if !a.StructuralEqual(b) {
				continue
			}
			for _, c := range objs {
				if b.StructuralEqual(c) && !a.StructuralEqual(c) {
					t.Fatal("equality not transitive")
				}
			}
		}
	}
}

func TestHashValueMatchesEqual(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Equal(vb) && HashValue(va) != HashValue(vb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if HashValue(Int(3)) != HashValue(Float(3)) {
		t.Error("3 and 3.0 must hash equal since they compare equal")
	}
}
