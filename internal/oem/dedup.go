package oem

// Deduper incrementally detects structural duplicates among objects: a
// hash-indexed set using the memoized StructuralHash for bucketing and
// StructuralEqual for exactness. It is the one implementation behind
// every structural duplicate elimination in MedMaker — store-level, the
// handcoded baseline's, and the engine's object fusion — which used to
// carry three copies of the same loop.
type Deduper struct {
	byHash map[uint64][]*Object
}

// NewDeduper returns a deduper sized for about n objects.
func NewDeduper(n int) *Deduper {
	return &Deduper{byHash: make(map[uint64][]*Object, n)}
}

// Seen reports whether a structural duplicate of o was already recorded;
// when not, o itself is recorded. Nil objects are never recorded and
// always report seen.
func (d *Deduper) Seen(o *Object) bool {
	if o == nil {
		return true
	}
	h := o.StructuralHash()
	for _, prev := range d.byHash[h] {
		if prev.StructuralEqual(o) {
			return true
		}
	}
	d.byHash[h] = append(d.byHash[h], o)
	return false
}

// DedupStructural returns objs with structural duplicates of earlier
// objects removed, preserving first-occurrence order. The result aliases
// a fresh backing array, leaving objs intact. dropped, when non-nil, is
// called for every removed object (stores use it to unindex the dropped
// subtree).
func DedupStructural(objs []*Object, dropped func(*Object)) []*Object {
	d := NewDeduper(len(objs))
	out := objs[:0:0]
	for _, o := range objs {
		if d.Seen(o) {
			if dropped != nil {
				dropped(o)
			}
			continue
		}
		out = append(out, o)
	}
	return out
}
