package oem

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFromJSONObject(t *testing.T) {
	doc := `{
	  "name": "Joe Chung",
	  "dept": "CS",
	  "year": 3,
	  "gpa": 3.5,
	  "active": true,
	  "nick": null,
	  "emails": ["joe@cs", "chung@cs"],
	  "address": {"city": "Palo Alto", "zip": "94301"}
	}`
	obj, err := FromJSON("person", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if obj.Label != "person" || obj.Kind() != KindSet {
		t.Fatalf("root: %s", obj)
	}
	if v, _ := obj.Sub("name").AtomString(); v != "Joe Chung" {
		t.Fatal("string field")
	}
	if n, _ := obj.Sub("year").AtomInt(); n != 3 {
		t.Fatal("int field")
	}
	if obj.Sub("gpa").Kind() != KindFloat {
		t.Fatal("float field")
	}
	if obj.Sub("active").Value != Bool(true) {
		t.Fatal("bool field")
	}
	// null omitted — structural irregularity.
	if obj.Sub("nick") != nil {
		t.Fatal("null should be omitted")
	}
	// Arrays flatten into repeated labels.
	if emails := obj.Subobjects().WithLabel("emails"); len(emails) != 2 {
		t.Fatalf("array flattening: %d emails", len(emails))
	}
	// Nested objects nest.
	if v, _ := obj.Sub("address").Sub("city").AtomString(); v != "Palo Alto" {
		t.Fatal("nested object")
	}
	if err := obj.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromJSONScalarsAndArrays(t *testing.T) {
	if o, err := FromJSON("x", []byte(`"hello"`)); err != nil || o.Value != String("hello") {
		t.Fatalf("scalar doc: %v, %v", o, err)
	}
	if o, err := FromJSON("n", []byte(`42`)); err != nil || o.Value != Int(42) {
		t.Fatalf("number doc: %v, %v", o, err)
	}
	// Bare top-level array: elements labelled n_elem.
	o, err := FromJSON("n", []byte(`[1, 2]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Subobjects().WithLabel("n_elem")) != 2 {
		t.Fatalf("bare array: %s", Format(o))
	}
	// Array of arrays.
	aa, err := FromJSON("m", []byte(`{"rows": [[1,2],[3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	rows := aa.Subobjects().WithLabel("rows")
	if len(rows) != 2 || len(rows[0].Subobjects()) != 2 {
		t.Fatalf("array of arrays: %s", Format(aa))
	}
}

func TestFromJSONErrors(t *testing.T) {
	bad := []string{
		`{`,            // truncated
		`null`,         // top-level null
		`{"a": 1} {}`,  // trailing document
		`{"a": 1}, []`, // trailing tokens
	}
	for _, doc := range bad {
		if _, err := FromJSON("x", []byte(doc)); err == nil {
			t.Errorf("FromJSON(%q) succeeded", doc)
		}
	}
	// Huge integers fall back to float.
	o, err := FromJSON("big", []byte(`123456789012345678901234567890`))
	if err != nil || o.Kind() != KindFloat {
		t.Fatalf("big number: %v %v", o, err)
	}
}

func TestFromJSONArrayOfRecords(t *testing.T) {
	doc := `[
	  {"name": "Joe", "dept": "CS"},
	  {"name": "Sue"},
	  null
	]`
	objs, err := FromJSONArray("person", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d records (nulls skipped)", len(objs))
	}
	if objs[0].Sub("dept") == nil || objs[1].Sub("dept") != nil {
		t.Fatal("irregularity lost")
	}
	if _, err := FromJSONArray("x", []byte(`{"not": "array"}`)); err == nil {
		t.Fatal("non-array accepted")
	}
}

func TestToJSONRoundTrip(t *testing.T) {
	objs := MustParse(`<person, set, {
	    <name, 'Joe'>, <year, 3>, <gpa, 3.5>, <ok, true>,
	    <email, 'a@x'>, <email, 'b@x'>,
	    <address, set, {<city, 'PA'>}>}>`)
	data, err := ToJSON(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("ToJSON produced invalid JSON: %v\n%s", err, data)
	}
	person := doc["person"].(map[string]any)
	if person["name"] != "Joe" {
		t.Fatalf("name: %v", person["name"])
	}
	if emails, ok := person["email"].([]any); !ok || len(emails) != 2 {
		t.Fatalf("repeated labels should become an array: %v", person["email"])
	}
	if addr, ok := person["address"].(map[string]any); !ok || addr["city"] != "PA" {
		t.Fatalf("nested: %v", person["address"])
	}
	// And back: structural equality modulo label-grouping order.
	back, err := FromJSON("person", []byte(strings.TrimPrefix(string(data), `{"person":`)[:0]+extractInner(t, data)))
	if err != nil {
		t.Fatal(err)
	}
	if !back.StructuralEqual(objs[0]) {
		t.Fatalf("JSON round trip changed the object:\n%s\nvs\n%s", Format(back), Format(objs[0]))
	}
}

// extractInner pulls the value of the single-key wrapper object.
func extractInner(t *testing.T, data []byte) string {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, v := range doc {
		return string(v)
	}
	t.Fatal("empty wrapper")
	return ""
}
