package oem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindSet:    "set",
		KindString: "string",
		KindInt:    "integer",
		KindFloat:  "real",
		KindBool:   "boolean",
		KindBytes:  "bytes",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind rendered %q", got)
	}
}

func TestKindFromName(t *testing.T) {
	cases := []struct {
		name string
		want Kind
		ok   bool
	}{
		{"string", KindString, true},
		{"str", KindString, true},
		{"integer", KindInt, true},
		{"int", KindInt, true},
		{"real", KindFloat, true},
		{"float", KindFloat, true},
		{"double", KindFloat, true},
		{"boolean", KindBool, true},
		{"bool", KindBool, true},
		{"set", KindSet, true},
		{"bytes", KindBytes, true},
		{"SET", KindSet, true},
		{"widget", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := KindFromName(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("KindFromName(%q) = %v,%v want %v,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestAtomicEquality(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{String("CS"), String("CS"), true},
		{String("CS"), String("EE"), false},
		{String("3"), Int(3), false},
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(3), Float(3.0), true}, // cross-kind numeric equality
		{Float(3.0), Int(3), true},
		{Float(3.5), Int(3), false},
		{Float(2.5), Float(2.5), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Bool(true), Int(1), false},
		{Bytes{1, 2}, Bytes{1, 2}, true},
		{Bytes{1, 2}, Bytes{1, 3}, false},
		{Bytes{1, 2}, Bytes{1, 2, 3}, false},
		{Bytes{}, String(""), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("(%v).Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSetEqualityOrderInsensitive(t *testing.T) {
	a := Set{New("&1", "x", 1), New("&2", "y", 2)}
	b := Set{New("&9", "y", 2), New("&8", "x", 1)} // different order, different oids
	if !a.Equal(b) {
		t.Fatal("sets with same members in different order should be equal")
	}
	c := Set{New("", "x", 1), New("", "y", 3)}
	if a.Equal(c) {
		t.Fatal("sets with different member values should differ")
	}
	d := Set{New("", "x", 1)}
	if a.Equal(d) {
		t.Fatal("sets of different size should differ")
	}
	if !(Set{}).Equal(Set{}) {
		t.Fatal("empty sets should be equal")
	}
	if (Set{}).Equal(String("x")) {
		t.Fatal("set should not equal an atom")
	}
}

func TestSetEqualityWithDuplicates(t *testing.T) {
	// Multiset semantics: {x,x,y} != {x,y,y}.
	x := func() *Object { return New("", "a", 1) }
	y := func() *Object { return New("", "a", 2) }
	a := Set{x(), x(), y()}
	b := Set{x(), y(), y()}
	if a.Equal(b) {
		t.Fatal("multisets with different multiplicities should differ")
	}
	c := Set{y(), x(), x()}
	if !a.Equal(c) {
		t.Fatal("equal multisets in different order should be equal")
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("CS"), "'CS'"},
		{String("it's"), `'it\'s'`},
		{String("a\nb"), `'a\nb'`},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(3.0), "3.0"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Bytes{0xde, 0xad}, "0xdead"},
		{Set{New("&141", "a", 1), New("&142", "b", 2)}, "{&141, &142}"},
		{Set{}, "{}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("(%#v).String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSetLabelsAndAccessors(t *testing.T) {
	s := Set{
		New("&1", "name", "Joe"),
		New("&2", "dept", "CS"),
		New("&3", "name", "Sue"),
	}
	labels := s.Labels()
	if len(labels) != 2 || labels[0] != "dept" || labels[1] != "name" {
		t.Fatalf("Labels() = %v", labels)
	}
	if got := s.WithLabel("name"); len(got) != 2 {
		t.Fatalf("WithLabel(name) returned %d objects", len(got))
	}
	if got := s.First("dept"); got == nil || got.OID != "&2" {
		t.Fatalf("First(dept) = %v", got)
	}
	if got := s.First("zzz"); got != nil {
		t.Fatalf("First(zzz) = %v, want nil", got)
	}
}

func TestAtomConstructor(t *testing.T) {
	if Atom("x") != String("x") {
		t.Error("Atom(string)")
	}
	if Atom(3) != Int(3) {
		t.Error("Atom(int)")
	}
	if Atom(int64(3)) != Int(3) {
		t.Error("Atom(int64)")
	}
	if Atom(2.5) != Float(2.5) {
		t.Error("Atom(float64)")
	}
	if Atom(true) != Bool(true) {
		t.Error("Atom(bool)")
	}
	if Atom(String("v")) != String("v") {
		t.Error("Atom(Value) should pass through")
	}
	defer func() {
		if recover() == nil {
			t.Error("Atom(struct{}{}) should panic")
		}
	}()
	Atom(struct{}{})
}

func TestCompareAtoms(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{String("c"), String("b"), 1, true},
		{Int(1), Int(2), -1, true},
		{Int(2), Float(1.5), 1, true},
		{Float(1.5), Int(2), -1, true},
		{Float(2.0), Float(2.0), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Bytes{1}, Bytes{2}, -1, true},
		{String("a"), Int(1), 0, false},
		{Int(1), String("a"), 0, false},
		{Set{}, Set{}, 0, false},
		{Bool(true), Int(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := CompareAtoms(c.a, c.b)
		if ok != c.ok {
			t.Errorf("CompareAtoms(%v,%v) ok=%v want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && sign(cmp) != c.cmp {
			t.Errorf("CompareAtoms(%v,%v) = %d want sign %d", c.a, c.b, cmp, c.cmp)
		}
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestQuoteAtomRoundTrip(t *testing.T) {
	f := func(s string) bool {
		objs, err := Parse("<x, string, " + QuoteAtom(s) + ">")
		if err != nil || len(objs) != 1 {
			return false
		}
		got, ok := objs[0].AtomString()
		return ok && got == s
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNumericEqualityImpliesEqualHash(t *testing.T) {
	f := func(n int64) bool {
		a := &Object{Label: "v", Value: Int(n)}
		b := &Object{Label: "v", Value: Float(float64(n))}
		if !a.StructuralEqual(b) {
			// Large ints lose precision as floats and may differ; only
			// demand hash agreement when equality holds.
			return true
		}
		return a.StructuralHash() == b.StructuralHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
