package lorel

import (
	"strings"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

func translate(t *testing.T, q string) *msl.Rule {
	t.Helper()
	r, err := Translate(q)
	if err != nil {
		t.Fatalf("Translate(%q): %v", q, err)
	}
	// The generated rule must round-trip through the MSL printer/parser.
	if _, err := msl.ParseRule(r.String()); err != nil {
		t.Fatalf("generated MSL does not reparse: %v\n%s", err, r)
	}
	return r
}

func TestSelectAttributes(t *testing.T) {
	r := translate(t, `select X.name, X.e_mail from med.cs_person X where X.dept = "CS"`)
	if len(r.Head) != 1 {
		t.Fatalf("head: %v", r.Head)
	}
	head := r.Head[0].(*msl.ObjectPattern)
	if head.LabelName() != "row" {
		t.Fatalf("head label %q", head.LabelName())
	}
	hs := head.Value.(*msl.SetPattern)
	if len(hs.Elems) != 2 {
		t.Fatalf("head has %d elements", len(hs.Elems))
	}
	pc := r.Tail[0].(*msl.PatternConjunct)
	if pc.Source != "med" || pc.Pattern.LabelName() != "cs_person" {
		t.Fatalf("from conjunct: %s", pc)
	}
	if !strings.Contains(r.String(), "<dept 'CS'>") {
		t.Fatalf("equality constant not in pattern: %s", r)
	}
}

func TestSelectWholeObject(t *testing.T) {
	r := translate(t, `select X from people.person X where X.dept = "CS"`)
	if v, ok := r.Head[0].(*msl.Var); !ok || v.Name != "X" {
		t.Fatalf("whole-object head: %v", r.Head[0])
	}
	pc := r.Tail[0].(*msl.PatternConjunct)
	if pc.ObjVar == nil || pc.ObjVar.Name != "X" {
		t.Fatalf("objvar missing: %s", pc)
	}
}

func TestComparisonBecomesPredicate(t *testing.T) {
	r := translate(t, `select X.name from med.person X where X.year >= 3`)
	if len(r.Tail) != 2 {
		t.Fatalf("tail: %s", r)
	}
	pred, ok := r.Tail[1].(*msl.PredicateConjunct)
	if !ok || pred.Name != "ge" {
		t.Fatalf("predicate: %v", r.Tail[1])
	}
	if c, ok := pred.Args[1].(*msl.Const); !ok || !c.Value.Equal(oem.Int(3)) {
		t.Fatalf("predicate constant: %v", pred.Args[1])
	}
}

func TestJoinViaSharedVariable(t *testing.T) {
	r := translate(t, `
	    select X.name, Y.title
	    from med.person X, med.book Y
	    where X.name = Y.author`)
	if len(r.Tail) != 2 {
		t.Fatalf("join should be pure patterns (shared variable), got %d conjuncts: %s", len(r.Tail), r)
	}
	// Both patterns reference the same variable.
	s := r.String()
	if !strings.Contains(s, "<name L1>") || !strings.Contains(s, "<author L1>") {
		t.Fatalf("shared join variable missing:\n%s", s)
	}
}

func TestNestedPaths(t *testing.T) {
	r := translate(t, `select X.name from med.person X where X.address.city = "Palo Alto"`)
	s := r.String()
	if !strings.Contains(s, "<address {<city 'Palo Alto'>}>") {
		t.Fatalf("nested path not built:\n%s", s)
	}
}

func TestSamePathSelectAndCondition(t *testing.T) {
	// Selecting a path that also carries an equality constant converts
	// the constant into an eq predicate on the shared variable.
	r := translate(t, `select X.dept from med.person X where X.dept = "CS"`)
	s := r.String()
	if !strings.Contains(s, "eq(") {
		t.Fatalf("equality not preserved:\n%s", s)
	}
}

func TestBooleanAndFloatLiterals(t *testing.T) {
	r := translate(t, `select X.name from med.person X where X.active = true and X.gpa > 3.5`)
	s := r.String()
	if !strings.Contains(s, "<active true>") {
		t.Fatalf("bool literal:\n%s", s)
	}
	if !strings.Contains(s, "gt(") || !strings.Contains(s, "3.5") {
		t.Fatalf("float comparison:\n%s", s)
	}
}

func TestDefaultSource(t *testing.T) {
	r := translate(t, `select X.name from person X`)
	pc := r.Tail[0].(*msl.PatternConjunct)
	if pc.Source != "" {
		t.Fatalf("default source should be empty (the queried mediator), got %q", pc.Source)
	}
}

func TestWholeObjectPlusAttributes(t *testing.T) {
	r := translate(t, `select X, X.name from med.person X`)
	head := r.Head[0].(*msl.ObjectPattern)
	hs := head.Value.(*msl.SetPattern)
	// name element + the whole object variable.
	if len(hs.Elems) != 2 {
		t.Fatalf("head elements: %s", r)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		``,                                       // empty
		`from med.person X`,                      // no select
		`select X`,                               // no from
		`select X from`,                          // missing from item
		`select X from med.person X where`,       // missing condition
		`select X from med.person X where X = 3`, // bare-variable condition
		`select Y.name from med.person X`,        // unbound variable
		`select X.name from med.person X where Y.a = 1`,                    // unbound in where
		`select X.name from med.person X, med.book X`,                      // duplicate binding
		`select X.name from med.person X where X.name ~ 3`,                 // bad operator
		`select X.name from med.person X extra`,                            // trailing tokens
		`select x from med.person X`,                                       // lower-case select var
		`select X.name.first, X.name from med.person X where X.name = "x"`, // value vs structure
	}
	for _, q := range bad {
		if _, err := Translate(q); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", q)
		}
	}
}

func TestExistsAndMissing(t *testing.T) {
	r := translate(t, `select X.name from med.person X where exists X.e_mail and missing X.phone`)
	s := r.String()
	if !strings.Contains(s, "<e_mail") {
		t.Fatalf("exists not materialized:\n%s", s)
	}
	if !strings.Contains(s, "lacks(LRest") || !strings.Contains(s, "'phone'") {
		t.Fatalf("missing not translated to lacks:\n%s", s)
	}
	if !strings.Contains(s, "| LRest") {
		t.Fatalf("rest variable missing:\n%s", s)
	}
	// missing over an attribute also used positively is rejected.
	if _, err := Translate(`select X.phone from med.person X where missing X.phone`); err == nil {
		t.Fatal("conflicting missing accepted")
	}
	// missing needs exactly var.attr.
	if _, err := Translate(`select X.name from med.person X where missing X.a.b`); err == nil {
		t.Fatal("nested missing accepted")
	}
	if _, err := Translate(`select X.name from med.person X where exists X`); err == nil {
		t.Fatal("bare exists accepted")
	}
}

func TestPathEqualityWithExistingVars(t *testing.T) {
	// Both sides already have variables (from prior conditions): an eq
	// predicate is emitted instead of variable sharing.
	r := translate(t, `
	    select X.a, Y.b
	    from med.p X, med.q Y
	    where X.a > 1 and Y.b > 2 and X.a = Y.b`)
	found := false
	for _, c := range r.Tail {
		if pred, ok := c.(*msl.PredicateConjunct); ok && pred.Name == "eq" {
			found = true
		}
	}
	if !found {
		t.Fatalf("eq predicate missing:\n%s", r)
	}
}
