package lorel

import (
	"strings"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

func TestTranslateQueryPlainCompatible(t *testing.T) {
	tr, err := TranslateQuery(`select X.name from med.person X where X.dept = "CS"`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rule == nil || len(tr.Aggregates) != 0 {
		t.Fatalf("plain query misclassified: %+v", tr)
	}
	plain, err := Translate(`select X.name from med.person X where X.dept = "CS"`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rule.String() != plain.String() {
		t.Fatalf("TranslateQuery and Translate diverge:\n%s\n%s", tr.Rule, plain)
	}
}

func TestTranslateQueryAggregates(t *testing.T) {
	tr, err := TranslateQuery(`
	    select count(X), sum(X.salary), min(X.salary), max(X.salary), avg(X.salary)
	    from med.person X where X.dept = "CS"`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rule != nil || len(tr.Aggregates) != 5 {
		t.Fatalf("aggregate query misclassified: %+v", tr)
	}
	if tr.Aggregates[0].Spec.Label() != "count" || tr.Aggregates[1].Spec.Label() != "sum_salary" {
		t.Fatalf("labels: %v", tr.Aggregates)
	}
	// Every aggregate gets its own base; the condition is shared, but
	// count's base has no salary requirement while sum's does.
	countBase := tr.Aggregates[0].Rule.String()
	sumBase := tr.Aggregates[1].Rule.String()
	if strings.Contains(countBase, "salary") {
		t.Fatalf("count base requires salary: %s", countBase)
	}
	if !strings.Contains(sumBase, "salary") {
		t.Fatalf("sum base misses salary: %s", sumBase)
	}
	for _, aq := range tr.Aggregates {
		if !strings.Contains(aq.Rule.String(), "'CS'") {
			t.Fatalf("where clause lost in %s", aq.Rule)
		}
	}
}

func TestTranslateQueryErrors(t *testing.T) {
	bad := []string{
		`select count(X), X.name from med.p X`, // mixing
		`select sum(X) from med.p X`,           // sum over bare var
		`select count(X from med.p X`,          // missing paren
		`select count X) from med.p X`,         // missing open paren
	}
	for _, q := range bad {
		if _, err := TranslateQuery(q); err == nil {
			t.Errorf("TranslateQuery(%q) succeeded", q)
		}
	}
}

func TestFold(t *testing.T) {
	tr, err := TranslateQuery(`select count(X), sum(X.salary) from med.person X`)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the mediator: count's base returns 3 whole objects, sum's
	// base only the 2 rows carrying salary.
	out, err := tr.Fold(func(r *msl.Rule) ([]*oem.Object, error) {
		if strings.Contains(r.String(), "salary") {
			return rowsOf(t, `<row, set, {<salary, 10>}> <row, set, {<salary, 20>}>`), nil
		}
		return rowsOf(t, `<person, set, {}> <person, set, {}> <person, set, {}>`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := out.Sub("count").AtomInt(); n != 3 {
		t.Fatalf("count = %d", n)
	}
	if s, _ := out.Sub("sum_salary").AtomInt(); s != 30 {
		t.Fatalf("sum = %d", s)
	}
}

func rowsOf(t *testing.T, text string) []*oem.Object {
	t.Helper()
	return oem.MustParse(text)
}

func TestApplyAggregates(t *testing.T) {
	rows := rowsOf(t, `
	<row, set, {<salary, 100>, <grade, 'a'>}>
	<row, set, {<salary, 200>, <grade, 'c'>}>
	<row, set, {<grade, 'b'>}>`)
	out, err := ApplyAggregates(rows, []AggSpec{
		{Fn: "count"},
		{Fn: "count", Attr: "salary"},
		{Fn: "sum", Attr: "salary"},
		{Fn: "avg", Attr: "salary"},
		{Fn: "min", Attr: "salary"},
		{Fn: "max", Attr: "grade"},
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, want oem.Value) {
		t.Helper()
		sub := out.Sub(label)
		if sub == nil || !sub.Value.Equal(want) {
			t.Fatalf("%s = %v, want %v", label, sub, want)
		}
	}
	check("count", oem.Int(3))
	check("count_salary", oem.Int(2)) // the third row lacks salary
	check("sum_salary", oem.Int(300))
	check("avg_salary", oem.Float(150))
	check("min_salary", oem.Int(100))
	check("max_grade", oem.String("c"))
}

func TestApplyAggregatesEdges(t *testing.T) {
	// Empty input.
	out, err := ApplyAggregates(nil, []AggSpec{{Fn: "count"}, {Fn: "min", Attr: "x"}, {Fn: "avg", Attr: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sub("count").Value.Equal(oem.Int(0)) {
		t.Fatal("count of empty")
	}
	if out.Sub("min_x").Kind() != oem.KindSet {
		t.Fatal("min of empty should be the empty-set marker")
	}
	if out.Sub("avg_x").Kind() != oem.KindSet {
		t.Fatal("avg of empty should be the empty-set marker")
	}
	// Float sum.
	rows := rowsOf(t, `<row, set, {<x, 1.5>}> <row, set, {<x, 2>}>`)
	out2, _ := ApplyAggregates(rows, []AggSpec{{Fn: "sum", Attr: "x"}})
	if !out2.Sub("sum_x").Value.Equal(oem.Float(3.5)) {
		t.Fatalf("float sum: %v", out2.Sub("sum_x"))
	}
	// Non-numeric sum fails.
	bad := rowsOf(t, `<row, set, {<x, 'oops'>}>`)
	if _, err := ApplyAggregates(bad, []AggSpec{{Fn: "sum", Attr: "x"}}); err == nil {
		t.Fatal("sum over strings accepted")
	}
	// Incomparable min fails.
	mixed := rowsOf(t, `<row, set, {<x, 'a'>}> <row, set, {<x, 1>}>`)
	if _, err := ApplyAggregates(mixed, []AggSpec{{Fn: "min", Attr: "x"}}); err == nil {
		t.Fatal("min over mixed kinds accepted")
	}
}
