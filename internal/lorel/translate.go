package lorel

import (
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// pnode is one position in a from-variable's access tree: the paths the
// query mentions below one binding variable. All references to the same
// path denote the same subobject (documented Lorel-lite semantics), so
// select lists, equality constants, and comparison predicates on a path
// share one pattern element.
type pnode struct {
	kids    map[string]*pnode
	order   []string
	varName string    // leaf variable, when the value is needed
	eqConst oem.Value // equality constant, when no variable is needed
}

func newPNode() *pnode { return &pnode{kids: map[string]*pnode{}} }

func (n *pnode) child(seg string) *pnode {
	if c, ok := n.kids[seg]; ok {
		return c
	}
	c := newPNode()
	n.kids[seg] = c
	n.order = append(n.order, seg)
	return c
}

type translator struct {
	roots map[string]*pnode
	order []string
	fresh int
	preds []*msl.PredicateConjunct
}

func (t *translator) root(varName string) (*pnode, error) {
	n, ok := t.roots[varName]
	if !ok {
		return nil, fmt.Errorf("lorel: variable %s is not bound in the from clause", varName)
	}
	return n, nil
}

// leaf walks a path below its from-variable, creating nodes as needed,
// and returns the leaf.
func (t *translator) leaf(path []string) (*pnode, error) {
	n, err := t.root(path[0])
	if err != nil {
		return nil, err
	}
	for _, seg := range path[1:] {
		n = n.child(seg)
	}
	return n, nil
}

// varFor ensures the leaf carries a variable and returns its name. An
// equality constant already present is converted into an eq predicate on
// the new variable, preserving the condition.
func (t *translator) varFor(n *pnode) string {
	if n.varName != "" {
		return n.varName
	}
	t.fresh++
	n.varName = fmt.Sprintf("L%d", t.fresh)
	if n.eqConst != nil {
		t.preds = append(t.preds, &msl.PredicateConjunct{
			Name: "eq",
			Args: []msl.Term{&msl.Var{Name: n.varName}, &msl.Const{Value: n.eqConst}},
		})
		n.eqConst = nil
	}
	return n.varName
}

var opPredicates = map[string]string{
	"!=": "ne",
	"<":  "lt",
	"<=": "le",
	">":  "gt",
	">=": "ge",
}

// toMSL performs the translation.
func (q *query) toMSL() (*msl.Rule, error) {
	t := &translator{roots: map[string]*pnode{}}
	for _, fi := range q.from {
		if _, dup := t.roots[fi.varNam]; dup {
			return nil, fmt.Errorf("lorel: variable %s bound twice in the from clause", fi.varNam)
		}
		t.roots[fi.varNam] = newPNode()
		t.order = append(t.order, fi.varNam)
	}

	// Structural tests collected per from-variable: missing attributes
	// become lacks() over a rest variable on the root pattern.
	missing := map[string][]string{}

	// Conditions shape the trees.
	for _, c := range q.where {
		if c.op == "exists" {
			// Materializing the path is the whole requirement.
			if _, err := t.leaf(c.left); err != nil {
				return nil, err
			}
			continue
		}
		if c.op == "missing" {
			if _, err := t.root(c.left[0]); err != nil {
				return nil, err
			}
			missing[c.left[0]] = append(missing[c.left[0]], c.left[1])
			continue
		}
		left, err := t.leaf(c.left)
		if err != nil {
			return nil, err
		}
		switch rhs := c.right.(type) {
		case []string:
			right, err := t.leaf(rhs)
			if err != nil {
				return nil, err
			}
			if c.op == "=" {
				// A path join: share one variable so the pattern matcher
				// (and parameterized queries) enforce it.
				switch {
				case left.varName == "" && right.varName != "":
					left.varName = right.varName
				case left.varName != "" && right.varName == "":
					right.varName = left.varName
				case left.varName == "" && right.varName == "":
					name := t.varFor(left)
					right.varName = name
				default:
					t.preds = append(t.preds, &msl.PredicateConjunct{
						Name: "eq",
						Args: []msl.Term{&msl.Var{Name: left.varName}, &msl.Var{Name: right.varName}},
					})
				}
				// Converted equality constants must survive on both.
				continue
			}
			t.preds = append(t.preds, &msl.PredicateConjunct{
				Name: opPredicates[c.op],
				Args: []msl.Term{&msl.Var{Name: t.varFor(left)}, &msl.Var{Name: t.varFor(right)}},
			})
		case oem.Value:
			if c.op == "=" {
				if left.varName == "" && left.eqConst == nil {
					left.eqConst = rhs
				} else {
					t.preds = append(t.preds, &msl.PredicateConjunct{
						Name: "eq",
						Args: []msl.Term{&msl.Var{Name: t.varFor(left)}, &msl.Const{Value: rhs}},
					})
				}
				continue
			}
			t.preds = append(t.preds, &msl.PredicateConjunct{
				Name: opPredicates[c.op],
				Args: []msl.Term{&msl.Var{Name: t.varFor(left)}, &msl.Const{Value: rhs}},
			})
		}
	}

	// The select list shapes trees too, and defines the head.
	var headElems []msl.Term
	wholeObject := map[string]bool{}
	for _, s := range q.sel {
		if len(s.path) == 1 {
			wholeObject[s.path[0]] = true
			if _, err := t.root(s.path[0]); err != nil {
				return nil, err
			}
			continue
		}
		leaf, err := t.leaf(s.path)
		if err != nil {
			return nil, err
		}
		name := t.varFor(leaf)
		headElems = append(headElems, &msl.ObjectPattern{
			Label: &msl.Const{Value: oem.String(s.path[len(s.path)-1])},
			Value: &msl.Var{Name: name},
		})
	}

	rule := &msl.Rule{}
	// Head: a single whole-object select returns the objects themselves;
	// otherwise a <row {…}> object per binding, with whole objects
	// embedded as subobjects.
	if len(headElems) == 0 && len(wholeObject) == 1 && len(q.sel) == 1 {
		rule.Head = []msl.HeadTerm{&msl.Var{Name: q.sel[0].path[0]}}
	} else {
		elems := headElems
		for _, fi := range q.from {
			if wholeObject[fi.varNam] {
				elems = append(elems, &msl.Var{Name: fi.varNam})
			}
		}
		rule.Head = []msl.HeadTerm{&msl.ObjectPattern{
			Label: &msl.Const{Value: oem.String("row")},
			Value: &msl.SetPattern{Elems: elems},
		}}
	}

	// Tail: one pattern conjunct per from item, then the predicates.
	for _, fi := range q.from {
		node := t.roots[fi.varNam]
		value, err := buildSet(node)
		if err != nil {
			return nil, fmt.Errorf("lorel: variable %s: %w", fi.varNam, err)
		}
		if labels := missing[fi.varNam]; len(labels) > 0 {
			// A "missing" attribute must not also be used positively —
			// consumed elements would hide it from the rest set.
			for _, label := range labels {
				if _, used := node.kids[label]; used {
					return nil, fmt.Errorf("lorel: %s.%s is tested as missing but also used elsewhere", fi.varNam, label)
				}
			}
			sp, _ := value.(*msl.SetPattern)
			if sp == nil {
				sp = &msl.SetPattern{}
			}
			t.fresh++
			rest := &msl.Var{Name: fmt.Sprintf("LRest%d", t.fresh)}
			sp.Rest = rest
			value = sp
			for _, label := range labels {
				t.preds = append(t.preds, &msl.PredicateConjunct{
					Name: "lacks",
					Args: []msl.Term{rest, &msl.Const{Value: oem.String(label)}},
				})
			}
		}
		pc := &msl.PatternConjunct{
			Pattern: &msl.ObjectPattern{
				Label: &msl.Const{Value: oem.String(fi.label)},
				Value: value,
			},
			Source: fi.source,
		}
		if wholeObject[fi.varNam] {
			pc.ObjVar = &msl.Var{Name: fi.varNam}
		}
		rule.Tail = append(rule.Tail, pc)
	}
	for _, p := range t.preds {
		rule.Tail = append(rule.Tail, p)
	}
	if len(rule.Tail) == 0 {
		return nil, fmt.Errorf("lorel: query has no from bindings")
	}
	return rule, nil
}

// buildSet renders a node's children as a set pattern; nil when the node
// has no children (the whole value is unconstrained).
func buildSet(n *pnode) (msl.Term, error) {
	if len(n.order) == 0 {
		return nil, nil
	}
	sp := &msl.SetPattern{}
	for _, seg := range n.order {
		child := n.kids[seg]
		elem := &msl.ObjectPattern{Label: &msl.Const{Value: oem.String(seg)}}
		switch {
		case len(child.order) > 0:
			if child.varName != "" || child.eqConst != nil {
				return nil, fmt.Errorf("path through %q is used both as a value and as structure", seg)
			}
			inner, err := buildSet(child)
			if err != nil {
				return nil, err
			}
			elem.Value = inner
		case child.varName != "":
			elem.Value = &msl.Var{Name: child.varName}
		case child.eqConst != nil:
			elem.Value = &msl.Const{Value: child.eqConst}
		}
		sp.Elems = append(sp.Elems, elem)
	}
	return sp, nil
}
