// Package lorel implements a front end for a LOREL-style end-user query
// language, translated to MSL. The paper (footnote 4) describes LOREL as
// TSIMMIS's "object-oriented extension to SQL … oriented to the end-user",
// with MSL the more powerful mediator-specification language; this package
// provides that surface syntax over the same machinery:
//
//	select X.name, X.e_mail
//	from   med.cs_person X
//	where  X.dept = "CS" and X.year >= 3
//
// translates to the MSL rule
//
//	<row {<name V1> <e_mail V2>}> :-
//	    X:<cs_person {<name V1> <e_mail V2> <dept 'CS'> <year V3>}>@med
//	    AND ge(V3, 3).
//
// Supported forms: multiple from-bindings (joins via shared paths are
// expressed with equality conditions between paths), dotted path
// expressions of any depth, comparison operators = != < <= > >=, string
// ("…"), integer, real, and boolean literals, and "select X" to return
// whole objects. DISTINCT is implicit (MSL semantics always eliminate
// duplicate bindings).
package lorel

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Translate parses a LOREL query and returns the equivalent MSL rule.
func Translate(query string) (*msl.Rule, error) {
	p := &parser{toks: lex(query)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q.toMSL()
}

// --- surface syntax ---

type selectItem struct {
	path []string // var, segments…; len 1 = whole object
}

type fromItem struct {
	source string // may be empty: the mediator being queried
	label  string
	varNam string
}

type condition struct {
	left []string // path
	// op is a comparison operator, or "exists"/"missing" for structural
	// tests (right is then nil).
	op    string
	right any // oem.Value literal or []string path
}

type query struct {
	sel   []selectItem
	from  []fromItem
	where []condition
}

// --- lexer ---

type tok struct {
	kind string // ident, var, string, number, bool, punct, eof
	text string
}

func lex(src string) []tok {
	var out []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',' || c == '.' || c == '(' || c == ')':
			out = append(out, tok{"punct", string(c)})
			i++
		case c == '=':
			out = append(out, tok{"punct", "="})
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			out = append(out, tok{"punct", "!="})
			i += 2
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			out = append(out, tok{"punct", op})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			out = append(out, tok{"string", sb.String()})
			i = j + 1
		case c == '-' || c >= '0' && c <= '9':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				(src[j] == '-' || src[j] == '+') && (src[j-1] == 'e' || src[j-1] == 'E')) {
				j++
			}
			out = append(out, tok{"number", src[i:j]})
			i = j
		default:
			r := rune(c)
			if r == '_' || unicode.IsLetter(r) {
				j := i
				for j < len(src) && (src[j] == '_' || isAlnum(src[j])) {
					j++
				}
				word := src[i:j]
				i = j
				switch strings.ToLower(word) {
				case "true", "false":
					out = append(out, tok{"bool", strings.ToLower(word)})
				default:
					if unicode.IsUpper(rune(word[0])) {
						out = append(out, tok{"var", word})
					} else {
						out = append(out, tok{"ident", word})
					}
				}
			} else {
				out = append(out, tok{"punct", string(c)})
				i++
			}
		}
	}
	return append(out, tok{kind: "eof"})
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// --- parser ---

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok { return p.toks[p.pos] }

func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *parser) keyword(word string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, word) {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseQuery() (*query, error) {
	q := &query{}
	if !p.keyword("select") {
		return nil, fmt.Errorf("lorel: query must start with 'select', found %q", p.peek().text)
	}
	for {
		item, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		q.sel = append(q.sel, selectItem{path: item})
		if p.peek().text != "," {
			break
		}
		p.next()
	}
	if !p.keyword("from") {
		return nil, fmt.Errorf("lorel: expected 'from', found %q", p.peek().text)
	}
	for {
		fi, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		q.from = append(q.from, fi)
		if p.peek().text != "," {
			break
		}
		p.next()
	}
	if p.keyword("where") {
		for {
			c, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.where = append(q.where, c)
			if !p.keyword("and") {
				break
			}
		}
	}
	if t := p.peek(); t.kind != "eof" {
		return nil, fmt.Errorf("lorel: unexpected %q after query", t.text)
	}
	return q, nil
}

// parsePath reads Var or Var.seg.seg…
func (p *parser) parsePath() ([]string, error) {
	v := p.next()
	if v.kind != "var" {
		return nil, fmt.Errorf("lorel: expected a variable, found %q (variables start upper-case)", v.text)
	}
	path := []string{v.text}
	for p.peek().text == "." {
		p.next()
		seg := p.next()
		if seg.kind != "ident" {
			return nil, fmt.Errorf("lorel: expected an attribute after '.', found %q", seg.text)
		}
		path = append(path, seg.text)
	}
	return path, nil
}

// parseFrom reads [source '.'] label Var.
func (p *parser) parseFrom() (fromItem, error) {
	first := p.next()
	if first.kind != "ident" {
		return fromItem{}, fmt.Errorf("lorel: expected a source or label in from clause, found %q", first.text)
	}
	fi := fromItem{label: first.text}
	if p.peek().text == "." {
		p.next()
		label := p.next()
		if label.kind != "ident" {
			return fromItem{}, fmt.Errorf("lorel: expected a label after source %q., found %q", first.text, label.text)
		}
		fi.source = first.text
		fi.label = label.text
	}
	v := p.next()
	if v.kind != "var" {
		return fromItem{}, fmt.Errorf("lorel: expected a binding variable after %q, found %q", fi.label, v.text)
	}
	fi.varNam = v.text
	return fi, nil
}

func (p *parser) parseCondition() (condition, error) {
	// Structural tests: "exists X.attr" / "missing X.attr".
	if p.keyword("exists") {
		path, err := p.parsePath()
		if err != nil {
			return condition{}, err
		}
		if len(path) < 2 {
			return condition{}, fmt.Errorf("lorel: exists needs an attribute path")
		}
		return condition{left: path, op: "exists"}, nil
	}
	if p.keyword("missing") {
		path, err := p.parsePath()
		if err != nil {
			return condition{}, err
		}
		if len(path) != 2 {
			return condition{}, fmt.Errorf("lorel: missing supports exactly one attribute below the variable (e.g. missing X.e_mail)")
		}
		return condition{left: path, op: "missing"}, nil
	}
	left, err := p.parsePath()
	if err != nil {
		return condition{}, err
	}
	if len(left) < 2 {
		return condition{}, fmt.Errorf("lorel: condition must test an attribute path, found bare %q", left[0])
	}
	op := p.next()
	switch op.text {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return condition{}, fmt.Errorf("lorel: expected a comparison operator, found %q", op.text)
	}
	c := condition{left: left, op: op.text}
	rhs := p.peek()
	switch rhs.kind {
	case "string":
		p.next()
		c.right = oem.String(rhs.text)
	case "number":
		p.next()
		if strings.ContainsAny(rhs.text, ".eE") {
			f, err := strconv.ParseFloat(rhs.text, 64)
			if err != nil {
				return condition{}, fmt.Errorf("lorel: bad number %q", rhs.text)
			}
			c.right = oem.Float(f)
		} else {
			n, err := strconv.ParseInt(rhs.text, 10, 64)
			if err != nil {
				return condition{}, fmt.Errorf("lorel: bad number %q", rhs.text)
			}
			c.right = oem.Int(n)
		}
	case "bool":
		p.next()
		c.right = oem.Bool(rhs.text == "true")
	case "var":
		path, err := p.parsePath()
		if err != nil {
			return condition{}, err
		}
		c.right = path
	default:
		return condition{}, fmt.Errorf("lorel: expected a literal or path after %q, found %q", op.text, rhs.text)
	}
	return c, nil
}
