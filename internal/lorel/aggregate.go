package lorel

import (
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// AggSpec is one aggregate in a LOREL select list: Fn over the attribute
// named by the last segment of its path (empty for count over whole
// bindings).
type AggSpec struct {
	// Fn is count, sum, min, max, or avg.
	Fn string
	// Attr is the aggregated attribute label; empty for count(Var).
	Attr string
}

// Label returns the result attribute name, e.g. "sum_salary" or "count".
func (a AggSpec) Label() string {
	if a.Attr == "" {
		return a.Fn
	}
	return a.Fn + "_" + a.Attr
}

var aggregateFns = map[string]bool{"count": true, "sum": true, "min": true, "max": true, "avg": true}

// AggQuery pairs one aggregate with the base rule computing its inputs.
// Each aggregate gets its own base so the attribute requirement of one
// (e.g. max(X.year) needs a year) never constrains another (count(X)
// counts every binding) — the count(*) vs count(col) distinction.
type AggQuery struct {
	Spec AggSpec
	Rule *msl.Rule
}

// Translated is the result of TranslateQuery: exactly one of Rule (plain
// query) and Aggregates is set.
type Translated struct {
	Rule       *msl.Rule
	Aggregates []AggQuery
}

// TranslateQuery parses a LOREL query that may carry aggregates in its
// select list. Aggregates fold over each base rule's distinct bindings
// (MSL semantics eliminate duplicates, so aggregation is over the set of
// bindings). Aggregates and plain select items cannot mix, and there is
// no grouping.
func TranslateQuery(src string) (*Translated, error) {
	p := &parser{toks: lex(src)}
	q, aggs, err := p.parseAggQuery()
	if err != nil {
		return nil, err
	}
	if len(aggs) == 0 {
		rule, err := q.toMSL()
		if err != nil {
			return nil, err
		}
		return &Translated{Rule: rule}, nil
	}
	out := &Translated{}
	for i, a := range aggs {
		base := &query{
			sel:   []selectItem{q.sel[i]},
			from:  q.from,
			where: q.where,
		}
		rule, err := base.toMSL()
		if err != nil {
			return nil, err
		}
		out.Aggregates = append(out.Aggregates, AggQuery{Spec: a, Rule: rule})
	}
	return out, nil
}

// parseAggQuery parses like parseQuery but allows aggregate select items,
// rewriting them into plain path selects for the base query.
func (p *parser) parseAggQuery() (*query, []AggSpec, error) {
	if !p.keyword("select") {
		return nil, nil, fmt.Errorf("lorel: query must start with 'select', found %q", p.peek().text)
	}
	q := &query{}
	var aggs []AggSpec
	plain := 0
	for {
		t := p.peek()
		if t.kind == "ident" && aggregateFns[t.text] {
			p.next()
			if p.next().text != "(" {
				return nil, nil, fmt.Errorf("lorel: expected '(' after %s", t.text)
			}
			path, err := p.parsePath()
			if err != nil {
				return nil, nil, err
			}
			if p.next().text != ")" {
				return nil, nil, fmt.Errorf("lorel: expected ')' closing %s(…)", t.text)
			}
			spec := AggSpec{Fn: t.text}
			if len(path) > 1 {
				spec.Attr = path[len(path)-1]
			} else if t.text != "count" {
				return nil, nil, fmt.Errorf("lorel: %s needs an attribute path, not a bare variable", t.text)
			}
			aggs = append(aggs, spec)
			q.sel = append(q.sel, selectItem{path: path})
		} else {
			item, err := p.parsePath()
			if err != nil {
				return nil, nil, err
			}
			plain++
			q.sel = append(q.sel, selectItem{path: item})
		}
		if p.peek().text != "," {
			break
		}
		p.next()
	}
	if len(aggs) > 0 && plain > 0 {
		return nil, nil, fmt.Errorf("lorel: aggregates and plain select items cannot mix (no grouping)")
	}
	if !p.keyword("from") {
		return nil, nil, fmt.Errorf("lorel: expected 'from', found %q", p.peek().text)
	}
	for {
		fi, err := p.parseFrom()
		if err != nil {
			return nil, nil, err
		}
		q.from = append(q.from, fi)
		if p.peek().text != "," {
			break
		}
		p.next()
	}
	if p.keyword("where") {
		for {
			c, err := p.parseCondition()
			if err != nil {
				return nil, nil, err
			}
			q.where = append(q.where, c)
			if !p.keyword("and") {
				break
			}
		}
	}
	if t := p.peek(); t.kind != "eof" {
		return nil, nil, fmt.Errorf("lorel: unexpected %q after query", t.text)
	}
	return q, aggs, nil
}

// Fold runs every aggregate's base rule through run and combines the
// folds into a single <result {…}> object, one subobject per aggregate.
// min/max use atomic ordering (numbers numerically, strings lexically);
// sum and avg require numbers; count counts the base rule's rows.
func (t *Translated) Fold(run func(*msl.Rule) ([]*oem.Object, error)) (*oem.Object, error) {
	subs := make(oem.Set, 0, len(t.Aggregates))
	for _, aq := range t.Aggregates {
		rows, err := run(aq.Rule)
		if err != nil {
			return nil, err
		}
		val, err := applyOne(rows, aq.Spec)
		if err != nil {
			return nil, err
		}
		subs = append(subs, &oem.Object{Label: aq.Spec.Label(), Value: val})
	}
	return &oem.Object{Label: "result", Value: subs}, nil
}

// ApplyAggregates folds one result-row set under several aggregate specs
// — the single-base form used when every aggregate shares one input.
func ApplyAggregates(rows []*oem.Object, aggs []AggSpec) (*oem.Object, error) {
	subs := make(oem.Set, 0, len(aggs))
	for _, a := range aggs {
		val, err := applyOne(rows, a)
		if err != nil {
			return nil, err
		}
		subs = append(subs, &oem.Object{Label: a.Label(), Value: val})
	}
	return &oem.Object{Label: "result", Value: subs}, nil
}

func applyOne(rows []*oem.Object, a AggSpec) (oem.Value, error) {
	if a.Fn == "count" {
		if a.Attr == "" {
			return oem.Int(len(rows)), nil
		}
		n := 0
		for _, r := range rows {
			if r.Sub(a.Attr) != nil {
				n++
			}
		}
		return oem.Int(n), nil
	}
	var best oem.Value
	sum := 0.0
	integral := true
	n := 0
	for _, r := range rows {
		sub := r.Sub(a.Attr)
		if sub == nil || sub.Value == nil {
			continue
		}
		v := sub.Value
		switch a.Fn {
		case "min", "max":
			if best == nil {
				best = v
				n++
				continue
			}
			cmp, ok := oem.CompareAtoms(v, best)
			if !ok {
				return nil, fmt.Errorf("lorel: %s(%s): incomparable values %s and %s", a.Fn, a.Attr, v, best)
			}
			if a.Fn == "min" && cmp < 0 || a.Fn == "max" && cmp > 0 {
				best = v
			}
			n++
		case "sum", "avg":
			switch num := v.(type) {
			case oem.Int:
				sum += float64(num)
			case oem.Float:
				sum += float64(num)
				integral = false
			default:
				return nil, fmt.Errorf("lorel: %s(%s): non-numeric value %s", a.Fn, a.Attr, v)
			}
			n++
		}
	}
	switch a.Fn {
	case "min", "max":
		if best == nil {
			return oem.Set(nil), nil // no values: empty-set marker
		}
		return best, nil
	case "sum":
		if integral {
			return oem.Int(int64(sum)), nil
		}
		return oem.Float(sum), nil
	case "avg":
		if n == 0 {
			return oem.Set(nil), nil
		}
		return oem.Float(sum / float64(n)), nil
	}
	return nil, fmt.Errorf("lorel: unknown aggregate %q", a.Fn)
}
