// Package match implements MSL pattern matching against OEM object
// structures, producing variable bindings.
//
// Matching follows Section 2 of the MedMaker paper: a tail pattern is
// matched against candidate objects, trying to bind the pattern's
// variables to object components — labels, atomic values, oids, whole
// objects, or sets of subobjects. A set pattern {p1 … pk | Rest} requires
// k distinct subobjects matching the element patterns; Rest captures the
// remaining subobjects, which is what makes specifications insensitive to
// schema evolution. Subset semantics apply even without a rest variable:
// unmentioned subobjects never block a match.
package match

import (
	"fmt"
	"maps"
	"sort"
	"strings"

	"medmaker/internal/oem"
)

// Binding is the value an MSL variable is bound to: either a whole OEM
// object (object variables, set-pattern element variables) or an OEM value
// (atomic values, labels and oids as strings, and sets for rest
// variables). Exactly one of Obj and Val is set.
type Binding struct {
	Obj *oem.Object
	Val oem.Value
}

// BindObj binds a whole object.
func BindObj(o *oem.Object) Binding { return Binding{Obj: o} }

// BindVal binds an OEM value.
func BindVal(v oem.Value) Binding { return Binding{Val: v} }

// BindString binds a string value (labels, oids).
func BindString(s string) Binding { return Binding{Val: oem.String(s)} }

// IsZero reports whether the binding is unset.
func (b Binding) IsZero() bool { return b.Obj == nil && b.Val == nil }

// Equal reports whether two bindings denote the same thing. Objects
// compare structurally (cross-source joins must not depend on oids); an
// object and a value never compare equal.
func (b Binding) Equal(o Binding) bool {
	if b.Obj != nil || o.Obj != nil {
		return b.Obj != nil && o.Obj != nil && b.Obj.StructuralEqual(o.Obj)
	}
	if b.Val == nil || o.Val == nil {
		return b.Val == nil && o.Val == nil
	}
	return b.Val.Equal(o.Val)
}

// unboundHash is the hash of the zero (unbound) Binding. It is a fixed
// random-looking constant rather than 0: unbound bindings must hash
// equal to each other (zero bindings compare Equal) but must not share a
// hash bucket with whatever else happens to hash to 0, so sparse join
// keys and dedup projections over partially-bound rows spread normally.
const unboundHash = 0x9ae16a3b2f90404f

// Hash returns a hash consistent with Equal, for join and
// duplicate-elimination indexes.
func (b Binding) Hash() uint64 {
	if b.Obj != nil {
		return b.Obj.StructuralHash() ^ 0x9e3779b97f4a7c15
	}
	if b.Val == nil {
		return unboundHash
	}
	return oem.HashValue(b.Val)
}

// String renders the binding for traces and error messages.
func (b Binding) String() string {
	if b.Obj != nil {
		return b.Obj.String()
	}
	if b.Val == nil {
		return "<unbound>"
	}
	return b.Val.String()
}

// AsValue converts the binding to an oem.Value: objects become singleton
// references to their value? No — a whole object has no value-level
// equivalent, so AsValue returns ok=false for object bindings; use Obj
// directly.
func (b Binding) AsValue() (oem.Value, bool) {
	if b.Val != nil {
		return b.Val, true
	}
	return nil, false
}

// Env is an immutable-by-convention variable environment: extensions copy.
// The zero value (nil map) is the empty environment.
type Env map[string]Binding

// Lookup returns the binding of a variable.
func (e Env) Lookup(name string) (Binding, bool) {
	b, ok := e[name]
	return b, ok
}

// Extend returns a copy of e with name bound. If name is already bound to
// an Equal value, e itself is returned; if bound to a different value, ok
// is false.
func (e Env) Extend(name string, b Binding) (Env, bool) {
	if prev, bound := e[name]; bound {
		if prev.Equal(b) {
			return e, true
		}
		return nil, false
	}
	// maps.Clone uses the runtime's bulk copy, noticeably cheaper than a
	// rehash loop for the small environments matching produces.
	out := maps.Clone(e)
	if out == nil {
		out = make(Env, 1)
	}
	out[name] = b
	return out, true
}

// Join merges two environments; it fails when a shared variable is bound
// to different values — the binding-match step of rule evaluation.
func (e Env) Join(o Env) (Env, bool) {
	small, big := e, o
	if len(small) > len(big) {
		small, big = big, small
	}
	out := big
	for k, v := range small {
		var ok bool
		out, ok = out.Extend(k, v)
		if !ok {
			return nil, false
		}
	}
	return out, true
}

// Project returns a copy of e restricted to the given variables; unbound
// names are simply absent.
func (e Env) Project(vars []string) Env {
	out := make(Env, len(vars))
	for _, v := range vars {
		if b, ok := e[v]; ok {
			out[v] = b
		}
	}
	return out
}

// Key returns a canonical string for duplicate elimination over the given
// variables: equal projections yield equal keys with overwhelming
// probability (hash-based; exactness is restored by callers that compare
// Equal on collision).
func (e Env) Key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		b := e[v]
		fmt.Fprintf(&sb, "%s=%016x;", v, b.Hash())
	}
	return sb.String()
}

// Row-hash mixing constants: FNV-64a's offset basis and prime. HashSeed
// starts a row hash; MixHash folds in one binding hash. The mix is
// order-dependent, so callers must fold a fixed variable order.
const (
	HashSeed  uint64 = 14695981039346656037
	hashPrime uint64 = 1099511628211
)

// MixHash folds one 64-bit value into a running row hash.
func MixHash(h, v uint64) uint64 { return (h ^ v) * hashPrime }

// HashEnv hashes the environment's projection onto vars, in order:
// projections that are Equal (including matching absences) hash equally,
// making it the numeric successor of Key for join and dedup indexes —
// no string formatting, no allocation.
func (e Env) HashEnv(vars []string) uint64 {
	h := HashSeed
	for _, v := range vars {
		h = MixHash(h, e[v].Hash())
	}
	return h
}

// projEqual reports whether two environments agree on every listed
// variable: bound in both to Equal values, or bound in neither.
func projEqual(a, b Env, vars []string) bool {
	for _, v := range vars {
		ab, aok := a[v]
		bb, bok := b[v]
		if aok != bok || !ab.Equal(bb) {
			return false
		}
	}
	return true
}

// Names returns the bound variable names, sorted.
func (e Env) Names() []string {
	out := make([]string, 0, len(e))
	for k := range e {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the environment sorted by name, for traces and tests.
func (e Env) String() string {
	names := e.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + " -> " + e[n].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports whether two environments bind the same variables to equal
// values.
func (e Env) Equal(o Env) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// DedupEnvs removes duplicate environments with respect to the given
// variables (the projection step before object construction; MSL
// semantics eliminate duplicated bindings). First occurrences win.
// Buckets are keyed by the numeric projection hash — no per-row
// projection copies or string keys — with per-variable equality
// restoring exactness on collision.
func DedupEnvs(envs []Env, vars []string) []Env {
	byKey := make(map[uint64][]Env, len(envs))
	out := envs[:0:0]
outer:
	for _, e := range envs {
		h := e.HashEnv(vars)
		for _, prev := range byKey[h] {
			if projEqual(prev, e, vars) {
				continue outer
			}
		}
		byKey[h] = append(byKey[h], e)
		out = append(out, e)
	}
	return out
}
