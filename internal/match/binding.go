// Package match implements MSL pattern matching against OEM object
// structures, producing variable bindings.
//
// Matching follows Section 2 of the MedMaker paper: a tail pattern is
// matched against candidate objects, trying to bind the pattern's
// variables to object components — labels, atomic values, oids, whole
// objects, or sets of subobjects. A set pattern {p1 … pk | Rest} requires
// k distinct subobjects matching the element patterns; Rest captures the
// remaining subobjects, which is what makes specifications insensitive to
// schema evolution. Subset semantics apply even without a rest variable:
// unmentioned subobjects never block a match.
package match

import (
	"fmt"
	"sort"
	"strings"

	"medmaker/internal/oem"
)

// Binding is the value an MSL variable is bound to: either a whole OEM
// object (object variables, set-pattern element variables) or an OEM value
// (atomic values, labels and oids as strings, and sets for rest
// variables). Exactly one of Obj and Val is set.
type Binding struct {
	Obj *oem.Object
	Val oem.Value
}

// BindObj binds a whole object.
func BindObj(o *oem.Object) Binding { return Binding{Obj: o} }

// BindVal binds an OEM value.
func BindVal(v oem.Value) Binding { return Binding{Val: v} }

// BindString binds a string value (labels, oids).
func BindString(s string) Binding { return Binding{Val: oem.String(s)} }

// IsZero reports whether the binding is unset.
func (b Binding) IsZero() bool { return b.Obj == nil && b.Val == nil }

// Equal reports whether two bindings denote the same thing. Objects
// compare structurally (cross-source joins must not depend on oids); an
// object and a value never compare equal.
func (b Binding) Equal(o Binding) bool {
	if b.Obj != nil || o.Obj != nil {
		return b.Obj != nil && o.Obj != nil && b.Obj.StructuralEqual(o.Obj)
	}
	if b.Val == nil || o.Val == nil {
		return b.Val == nil && o.Val == nil
	}
	return b.Val.Equal(o.Val)
}

// Hash returns a hash consistent with Equal, for join and
// duplicate-elimination indexes.
func (b Binding) Hash() uint64 {
	if b.Obj != nil {
		return b.Obj.StructuralHash() ^ 0x9e3779b97f4a7c15
	}
	if b.Val == nil {
		return 0
	}
	return oem.HashValue(b.Val)
}

// String renders the binding for traces and error messages.
func (b Binding) String() string {
	if b.Obj != nil {
		return b.Obj.String()
	}
	if b.Val == nil {
		return "<unbound>"
	}
	return b.Val.String()
}

// AsValue converts the binding to an oem.Value: objects become singleton
// references to their value? No — a whole object has no value-level
// equivalent, so AsValue returns ok=false for object bindings; use Obj
// directly.
func (b Binding) AsValue() (oem.Value, bool) {
	if b.Val != nil {
		return b.Val, true
	}
	return nil, false
}

// Env is an immutable-by-convention variable environment: extensions copy.
// The zero value (nil map) is the empty environment.
type Env map[string]Binding

// Lookup returns the binding of a variable.
func (e Env) Lookup(name string) (Binding, bool) {
	b, ok := e[name]
	return b, ok
}

// Extend returns a copy of e with name bound. If name is already bound to
// an Equal value, e itself is returned; if bound to a different value, ok
// is false.
func (e Env) Extend(name string, b Binding) (Env, bool) {
	if prev, bound := e[name]; bound {
		if prev.Equal(b) {
			return e, true
		}
		return nil, false
	}
	out := make(Env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	out[name] = b
	return out, true
}

// Join merges two environments; it fails when a shared variable is bound
// to different values — the binding-match step of rule evaluation.
func (e Env) Join(o Env) (Env, bool) {
	small, big := e, o
	if len(small) > len(big) {
		small, big = big, small
	}
	out := big
	for k, v := range small {
		var ok bool
		out, ok = out.Extend(k, v)
		if !ok {
			return nil, false
		}
	}
	return out, true
}

// Project returns a copy of e restricted to the given variables; unbound
// names are simply absent.
func (e Env) Project(vars []string) Env {
	out := make(Env, len(vars))
	for _, v := range vars {
		if b, ok := e[v]; ok {
			out[v] = b
		}
	}
	return out
}

// Key returns a canonical string for duplicate elimination over the given
// variables: equal projections yield equal keys with overwhelming
// probability (hash-based; exactness is restored by callers that compare
// Equal on collision).
func (e Env) Key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		b := e[v]
		fmt.Fprintf(&sb, "%s=%016x;", v, b.Hash())
	}
	return sb.String()
}

// Names returns the bound variable names, sorted.
func (e Env) Names() []string {
	out := make([]string, 0, len(e))
	for k := range e {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the environment sorted by name, for traces and tests.
func (e Env) String() string {
	names := e.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + " -> " + e[n].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports whether two environments bind the same variables to equal
// values.
func (e Env) Equal(o Env) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// DedupEnvs removes duplicate environments with respect to the given
// variables (the projection step before object construction; MSL
// semantics eliminate duplicated bindings).
func DedupEnvs(envs []Env, vars []string) []Env {
	type slot struct{ env Env }
	byKey := make(map[string][]slot, len(envs))
	out := envs[:0:0]
outer:
	for _, e := range envs {
		p := e.Project(vars)
		key := p.Key(vars)
		for _, s := range byKey[key] {
			if s.env.Equal(p) {
				continue outer
			}
		}
		byKey[key] = append(byKey[key], slot{p})
		out = append(out, e)
	}
	return out
}
