package match

import (
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Object returns every extension of env under which the pattern matches
// obj. A pattern with the wildcard flag may match obj itself or any
// descendant. An error is reported only for malformed patterns (e.g. an
// unsubstituted $parameter); a failed match is simply an empty result.
func Object(p *msl.ObjectPattern, obj *oem.Object, env Env) ([]Env, error) {
	if !p.Wildcard {
		return matchHere(p, obj, env)
	}
	var out []Env
	var walkErr error
	walkOnce(obj, make(map[*oem.Object]bool), func(cand *oem.Object) bool {
		envs, err := matchHere(p, cand, env)
		if err != nil {
			walkErr = err
			return false
		}
		out = append(out, envs...)
		return true
	})
	return out, walkErr
}

// walkOnce is Object.Walk with pointer-identity deduplication: an object
// reachable along several paths is visited, and descended into, exactly
// once per seen-set. OEM values are DAGs, not trees — fusion and shared
// construction alias subobjects — and a plain walk re-explores a shared
// subobject once per path, exponentially on chained sharing, while the
// duplicate visits contribute only duplicate rows the engine deduplicates
// anyway (a pointer-identical candidate yields byte-identical envs).
// Returning false from visit aborts the whole walk.
func walkOnce(o *oem.Object, seen map[*oem.Object]bool, visit func(*oem.Object) bool) bool {
	if o == nil || seen[o] {
		return true
	}
	seen[o] = true
	if !visit(o) {
		return false
	}
	for _, sub := range o.Subobjects() {
		if !walkOnce(sub, seen, visit) {
			return false
		}
	}
	return true
}

// Tops matches the pattern against each of the given top-level objects,
// optionally binding objVar to the matched object, and returns all
// resulting environments. This is the semantics of one tail pattern
// conjunct evaluated against a source.
func Tops(p *msl.ObjectPattern, objVar *msl.Var, tops []*oem.Object, env Env) ([]Env, error) {
	var out []Env
	// One seen-set across all tops: a subobject shared between two
	// top-level objects matches once, not once per top.
	var seen map[*oem.Object]bool
	if p.Wildcard {
		seen = make(map[*oem.Object]bool)
	}
	for _, obj := range tops {
		if !p.Wildcard {
			envs, err := matchWithObjVar(p, objVar, obj, env)
			if err != nil {
				return nil, err
			}
			out = append(out, envs...)
			continue
		}
		// Wildcard: any level of this object's structure.
		var walkErr error
		walkOnce(obj, seen, func(cand *oem.Object) bool {
			envs, err := matchWithObjVar(p, objVar, cand, env)
			if err != nil {
				walkErr = err
				return false
			}
			out = append(out, envs...)
			return true
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	return out, nil
}

func matchWithObjVar(p *msl.ObjectPattern, objVar *msl.Var, obj *oem.Object, env Env) ([]Env, error) {
	// Bind the object variable first so the pattern can reuse it.
	if objVar != nil {
		ext, ok := env.Extend(objVar.Name, BindObj(obj))
		if !ok {
			return nil, nil
		}
		env = ext
	}
	np := *p
	np.Wildcard = false
	return matchHere(&np, obj, env)
}

// matchHere matches the pattern against obj itself (no descent).
func matchHere(p *msl.ObjectPattern, obj *oem.Object, env Env) ([]Env, error) {
	// Type constraint.
	if p.Type != nil && obj.Kind() != *p.Type {
		return nil, nil
	}
	// OID field.
	switch ot := p.OID.(type) {
	case nil:
	case *msl.Const:
		if !ot.Value.Equal(oem.String(string(obj.OID))) {
			return nil, nil
		}
	case *msl.Var:
		ext, ok := env.Extend(ot.Name, BindString(string(obj.OID)))
		if !ok {
			return nil, nil
		}
		env = ext
	default:
		return nil, fmt.Errorf("match: unsupported oid term %s", p.OID)
	}
	// Label field.
	switch lt := p.Label.(type) {
	case *msl.Const:
		s, isStr := lt.Value.(oem.String)
		if !isStr || string(s) != obj.Label {
			return nil, nil
		}
	case *msl.Var:
		var ok bool
		env, ok = env.Extend(lt.Name, BindString(obj.Label))
		if !ok {
			return nil, nil
		}
	case *msl.Param:
		return nil, fmt.Errorf("match: unsubstituted parameter $%s in label position", lt.Name)
	default:
		return nil, fmt.Errorf("match: unsupported label term %s", p.Label)
	}
	// Value field.
	switch vt := p.Value.(type) {
	case nil:
		return []Env{env}, nil
	case *msl.Const:
		if obj.Value != nil && obj.Value.Equal(vt.Value) {
			return []Env{env}, nil
		}
		return nil, nil
	case *msl.Var:
		val := obj.Value
		if val == nil {
			val = oem.Set(nil)
		}
		ext, ok := env.Extend(vt.Name, BindVal(val))
		if !ok {
			return nil, nil
		}
		return []Env{ext}, nil
	case *msl.SetPattern:
		if obj.Kind() != oem.KindSet {
			return nil, nil
		}
		return matchSet(vt, obj.Subobjects(), env)
	case *msl.Param:
		return nil, fmt.Errorf("match: unsubstituted parameter $%s in value position", vt.Name)
	}
	return nil, fmt.Errorf("match: unsupported value term %s", p.Value)
}

// matchSet matches the element patterns against distinct subobjects,
// enumerating every injective assignment, and binds the rest variable to
// the unconsumed subobjects. Wildcard elements may match at any depth
// below and do not consume from the rest set.
func matchSet(sp *msl.SetPattern, subs oem.Set, env Env) ([]Env, error) {
	used := make([]bool, len(subs))
	var out []Env
	var rec func(i int, env Env) error
	rec = func(i int, env Env) error {
		if i == len(sp.Elems) {
			final, err := finishRest(sp, subs, used, env)
			if err != nil {
				return err
			}
			out = append(out, final...)
			return nil
		}
		switch elem := sp.Elems[i].(type) {
		case *msl.ObjectPattern:
			if elem.Wildcard {
				// Search all strict descendants; no consumption. One
				// seen-set spans the whole sub loop, so a descendant
				// shared between siblings is tried once per element.
				inner := *elem
				inner.Wildcard = false
				seen := make(map[*oem.Object]bool)
				for _, sub := range subs {
					var walkErr error
					walkOnce(sub, seen, func(cand *oem.Object) bool {
						envs, err := matchHere(&inner, cand, env)
						if err != nil {
							walkErr = err
							return false
						}
						for _, e := range envs {
							if err := rec(i+1, e); err != nil {
								walkErr = err
								return false
							}
						}
						return true
					})
					if walkErr != nil {
						return walkErr
					}
				}
				return nil
			}
			for j, sub := range subs {
				if used[j] {
					continue
				}
				envs, err := matchHere(elem, sub, env)
				if err != nil {
					return err
				}
				if len(envs) == 0 {
					continue
				}
				used[j] = true
				for _, e := range envs {
					if err := rec(i+1, e); err != nil {
						used[j] = false
						return err
					}
				}
				used[j] = false
			}
			return nil
		case *msl.Var:
			// A variable element binds to one subobject.
			for j, sub := range subs {
				if used[j] {
					continue
				}
				ext, ok := env.Extend(elem.Name, BindObj(sub))
				if !ok {
					continue
				}
				used[j] = true
				if err := rec(i+1, ext); err != nil {
					used[j] = false
					return err
				}
				used[j] = false
			}
			return nil
		default:
			return fmt.Errorf("match: unsupported set element %s", sp.Elems[i])
		}
	}
	if err := rec(0, env); err != nil {
		return nil, err
	}
	return out, nil
}

// finishRest binds the rest variable (if any) to the unconsumed subobjects
// and checks the rest constraints.
func finishRest(sp *msl.SetPattern, subs oem.Set, used []bool, env Env) ([]Env, error) {
	var rest oem.Set
	if sp.Rest != nil || len(sp.RestConstraints) > 0 {
		rest = make(oem.Set, 0, len(subs))
		for j, sub := range subs {
			if !used[j] {
				rest = append(rest, sub)
			}
		}
	}
	// Each rest constraint must match some member of the rest set. The
	// constraints may bind variables; enumerate the combinations.
	envs := []Env{env}
	for _, c := range sp.RestConstraints {
		var next []Env
		for _, e := range envs {
			for _, sub := range rest {
				got, err := Object(c, sub, e)
				if err != nil {
					return nil, err
				}
				next = append(next, got...)
			}
		}
		if len(next) == 0 {
			return nil, nil
		}
		envs = next
	}
	if sp.Rest == nil {
		return envs, nil
	}
	var out []Env
	for _, e := range envs {
		ext, ok := e.Extend(sp.Rest.Name, BindVal(rest))
		if ok {
			out = append(out, ext)
		}
	}
	return out, nil
}
