package match

import (
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// eenv is the matcher's internal environment: a base Env plus a
// persistent chain of extensions. Set-pattern matching enumerates many
// candidate bindings and discards most of them; extending a chain is one
// small allocation, where extending a map copies every entry, so the map
// is only built — by materialize — for environments that survive the
// whole pattern.
type eenv struct {
	base Env
	node *extNode
	n    int // chain length, to size the materialized map
}

// extNode is one extension; chains share tails, so sibling branches of
// the set-pattern enumeration never copy each other's bindings.
type extNode struct {
	prev *extNode
	name string
	b    Binding
}

func (e eenv) lookup(name string) (Binding, bool) {
	for nd := e.node; nd != nil; nd = nd.prev {
		if nd.name == name {
			return nd.b, true
		}
	}
	b, ok := e.base[name]
	return b, ok
}

// extend mirrors Env.Extend: already-bound names must agree, new names
// grow the chain.
func (e eenv) extend(name string, b Binding) (eenv, bool) {
	if prev, bound := e.lookup(name); bound {
		if prev.Equal(b) {
			return e, true
		}
		return eenv{}, false
	}
	return eenv{base: e.base, node: &extNode{prev: e.node, name: name, b: b}, n: e.n + 1}, true
}

// materialize flattens the chain into a plain Env. An unextended chain
// returns the base itself, matching Env.Extend's sharing behavior.
func (e eenv) materialize() Env {
	if e.node == nil {
		return e.base
	}
	out := make(Env, len(e.base)+e.n)
	for k, v := range e.base {
		out[k] = v
	}
	// Names are unique along a chain by construction, so order is moot.
	for nd := e.node; nd != nil; nd = nd.prev {
		out[nd.name] = nd.b
	}
	return out
}

func materializeAll(envs []eenv) []Env {
	if envs == nil {
		return nil
	}
	out := make([]Env, len(envs))
	for i, e := range envs {
		out[i] = e.materialize()
	}
	return out
}

// Object returns every extension of env under which the pattern matches
// obj. A pattern with the wildcard flag may match obj itself or any
// descendant. An error is reported only for malformed patterns (e.g. an
// unsubstituted $parameter); a failed match is simply an empty result.
func Object(p *msl.ObjectPattern, obj *oem.Object, env Env) ([]Env, error) {
	got, err := objectE(p, obj, eenv{base: env})
	return materializeAll(got), err
}

func objectE(p *msl.ObjectPattern, obj *oem.Object, env eenv) ([]eenv, error) {
	if !p.Wildcard {
		return matchHere(p, obj, env)
	}
	var out []eenv
	var walkErr error
	walkOnce(obj, make(map[*oem.Object]bool), func(cand *oem.Object) bool {
		envs, err := matchHere(p, cand, env)
		if err != nil {
			walkErr = err
			return false
		}
		out = append(out, envs...)
		return true
	})
	return out, walkErr
}

// walkOnce is Object.Walk with pointer-identity deduplication: an object
// reachable along several paths is visited, and descended into, exactly
// once per seen-set. OEM values are DAGs, not trees — fusion and shared
// construction alias subobjects — and a plain walk re-explores a shared
// subobject once per path, exponentially on chained sharing, while the
// duplicate visits contribute only duplicate rows the engine deduplicates
// anyway (a pointer-identical candidate yields byte-identical envs).
// Returning false from visit aborts the whole walk.
func walkOnce(o *oem.Object, seen map[*oem.Object]bool, visit func(*oem.Object) bool) bool {
	if o == nil || seen[o] {
		return true
	}
	seen[o] = true
	if !visit(o) {
		return false
	}
	for _, sub := range o.Subobjects() {
		if !walkOnce(sub, seen, visit) {
			return false
		}
	}
	return true
}

// Tops matches the pattern against each of the given top-level objects,
// optionally binding objVar to the matched object, and returns all
// resulting environments. This is the semantics of one tail pattern
// conjunct evaluated against a source.
func Tops(p *msl.ObjectPattern, objVar *msl.Var, tops []*oem.Object, env Env) ([]Env, error) {
	base := eenv{base: env}
	var out []eenv
	// One seen-set across all tops: a subobject shared between two
	// top-level objects matches once, not once per top.
	var seen map[*oem.Object]bool
	if p.Wildcard {
		seen = make(map[*oem.Object]bool)
	}
	for _, obj := range tops {
		if !p.Wildcard {
			envs, err := matchWithObjVar(p, objVar, obj, base)
			if err != nil {
				return nil, err
			}
			out = append(out, envs...)
			continue
		}
		// Wildcard: any level of this object's structure.
		var walkErr error
		walkOnce(obj, seen, func(cand *oem.Object) bool {
			envs, err := matchWithObjVar(p, objVar, cand, base)
			if err != nil {
				walkErr = err
				return false
			}
			out = append(out, envs...)
			return true
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	return materializeAll(out), nil
}

func matchWithObjVar(p *msl.ObjectPattern, objVar *msl.Var, obj *oem.Object, env eenv) ([]eenv, error) {
	// Bind the object variable first so the pattern can reuse it.
	if objVar != nil {
		ext, ok := env.extend(objVar.Name, BindObj(obj))
		if !ok {
			return nil, nil
		}
		env = ext
	}
	np := *p
	np.Wildcard = false
	return matchHere(&np, obj, env)
}

// matchHere matches the pattern against obj itself (no descent).
func matchHere(p *msl.ObjectPattern, obj *oem.Object, env eenv) ([]eenv, error) {
	// Type constraint.
	if p.Type != nil && obj.Kind() != *p.Type {
		return nil, nil
	}
	// OID field.
	switch ot := p.OID.(type) {
	case nil:
	case *msl.Const:
		if !ot.Value.Equal(oem.String(string(obj.OID))) {
			return nil, nil
		}
	case *msl.Var:
		ext, ok := env.extend(ot.Name, BindString(string(obj.OID)))
		if !ok {
			return nil, nil
		}
		env = ext
	default:
		return nil, fmt.Errorf("match: unsupported oid term %s", p.OID)
	}
	// Label field.
	switch lt := p.Label.(type) {
	case *msl.Const:
		s, isStr := lt.Value.(oem.String)
		if !isStr || string(s) != obj.Label {
			return nil, nil
		}
	case *msl.Var:
		var ok bool
		env, ok = env.extend(lt.Name, BindString(obj.Label))
		if !ok {
			return nil, nil
		}
	case *msl.Param:
		return nil, fmt.Errorf("match: unsubstituted parameter $%s in label position", lt.Name)
	default:
		return nil, fmt.Errorf("match: unsupported label term %s", p.Label)
	}
	// Value field.
	switch vt := p.Value.(type) {
	case nil:
		return []eenv{env}, nil
	case *msl.Const:
		if obj.Value != nil && obj.Value.Equal(vt.Value) {
			return []eenv{env}, nil
		}
		return nil, nil
	case *msl.Var:
		val := obj.Value
		if val == nil {
			val = oem.Set(nil)
		}
		ext, ok := env.extend(vt.Name, BindVal(val))
		if !ok {
			return nil, nil
		}
		return []eenv{ext}, nil
	case *msl.SetPattern:
		if obj.Kind() != oem.KindSet {
			return nil, nil
		}
		return matchSet(vt, obj.Subobjects(), env)
	case *msl.Param:
		return nil, fmt.Errorf("match: unsubstituted parameter $%s in value position", vt.Name)
	}
	return nil, fmt.Errorf("match: unsupported value term %s", p.Value)
}

// matchSet matches the element patterns against distinct subobjects,
// enumerating every injective assignment, and binds the rest variable to
// the unconsumed subobjects. Wildcard elements may match at any depth
// below and do not consume from the rest set.
func matchSet(sp *msl.SetPattern, subs oem.Set, env eenv) ([]eenv, error) {
	used := make([]bool, len(subs))
	var out []eenv
	var rec func(i int, env eenv) error
	rec = func(i int, env eenv) error {
		if i == len(sp.Elems) {
			final, err := finishRest(sp, subs, used, env)
			if err != nil {
				return err
			}
			out = append(out, final...)
			return nil
		}
		switch elem := sp.Elems[i].(type) {
		case *msl.ObjectPattern:
			if elem.Wildcard {
				// Search all strict descendants; no consumption. One
				// seen-set spans the whole sub loop, so a descendant
				// shared between siblings is tried once per element.
				inner := *elem
				inner.Wildcard = false
				seen := make(map[*oem.Object]bool)
				for _, sub := range subs {
					var walkErr error
					walkOnce(sub, seen, func(cand *oem.Object) bool {
						envs, err := matchHere(&inner, cand, env)
						if err != nil {
							walkErr = err
							return false
						}
						for _, e := range envs {
							if err := rec(i+1, e); err != nil {
								walkErr = err
								return false
							}
						}
						return true
					})
					if walkErr != nil {
						return walkErr
					}
				}
				return nil
			}
			for j, sub := range subs {
				if used[j] {
					continue
				}
				envs, err := matchHere(elem, sub, env)
				if err != nil {
					return err
				}
				if len(envs) == 0 {
					continue
				}
				used[j] = true
				for _, e := range envs {
					if err := rec(i+1, e); err != nil {
						used[j] = false
						return err
					}
				}
				used[j] = false
			}
			return nil
		case *msl.Var:
			// A variable element binds to one subobject.
			for j, sub := range subs {
				if used[j] {
					continue
				}
				ext, ok := env.extend(elem.Name, BindObj(sub))
				if !ok {
					continue
				}
				used[j] = true
				if err := rec(i+1, ext); err != nil {
					used[j] = false
					return err
				}
				used[j] = false
			}
			return nil
		default:
			return fmt.Errorf("match: unsupported set element %s", sp.Elems[i])
		}
	}
	if err := rec(0, env); err != nil {
		return nil, err
	}
	return out, nil
}

// finishRest binds the rest variable (if any) to the unconsumed subobjects
// and checks the rest constraints.
func finishRest(sp *msl.SetPattern, subs oem.Set, used []bool, env eenv) ([]eenv, error) {
	var rest oem.Set
	if sp.Rest != nil || len(sp.RestConstraints) > 0 {
		rest = make(oem.Set, 0, len(subs))
		for j, sub := range subs {
			if !used[j] {
				rest = append(rest, sub)
			}
		}
	}
	// Each rest constraint must match some member of the rest set. The
	// constraints may bind variables; enumerate the combinations.
	envs := []eenv{env}
	for _, c := range sp.RestConstraints {
		var next []eenv
		for _, e := range envs {
			for _, sub := range rest {
				got, err := objectE(c, sub, e)
				if err != nil {
					return nil, err
				}
				next = append(next, got...)
			}
		}
		if len(next) == 0 {
			return nil, nil
		}
		envs = next
	}
	if sp.Rest == nil {
		return envs, nil
	}
	var out []eenv
	for _, e := range envs {
		ext, ok := e.extend(sp.Rest.Name, BindVal(rest))
		if ok {
			out = append(out, ext)
		}
	}
	return out, nil
}
