package match

import (
	"testing"

	"medmaker/internal/oem"
)

func TestBindingEqualAndHash(t *testing.T) {
	obj1 := oem.NewSet("&1", "p", oem.New("&2", "a", 1))
	obj2 := oem.NewSet("&9", "p", oem.New("&8", "a", 1)) // same structure, different oids
	cases := []struct {
		a, b Binding
		want bool
	}{
		{BindVal(oem.String("x")), BindVal(oem.String("x")), true},
		{BindVal(oem.String("x")), BindVal(oem.String("y")), false},
		{BindVal(oem.Int(3)), BindVal(oem.Float(3)), true},
		{BindObj(obj1), BindObj(obj2), true},
		{BindObj(obj1), BindVal(oem.String("p")), false},
		{BindVal(oem.Set{obj1}), BindVal(oem.Set{obj2}), true},
		{Binding{}, Binding{}, true},
		{Binding{}, BindVal(oem.Int(0)), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("(%v).Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if c.want && c.a.Hash() != c.b.Hash() {
			t.Errorf("equal bindings %v, %v hash differently", c.a, c.b)
		}
	}
	// Objects and values with the same content must not collide in Equal.
	if BindObj(oem.New("", "a", 1)).Equal(BindVal(oem.Int(1))) {
		t.Error("object binding equal to value binding")
	}
}

func TestEnvExtendSemantics(t *testing.T) {
	var e Env
	e1, ok := e.Extend("X", BindVal(oem.Int(1)))
	if !ok || len(e1) != 1 {
		t.Fatal("Extend on empty env failed")
	}
	// Extending with the same value returns an equal env.
	e2, ok := e1.Extend("X", BindVal(oem.Float(1)))
	if !ok || !e2.Equal(e1) {
		t.Fatal("re-extending with an equal value should succeed")
	}
	// Conflicting rebinding fails.
	if _, ok := e1.Extend("X", BindVal(oem.Int(2))); ok {
		t.Fatal("conflicting Extend succeeded")
	}
	// The original env is never mutated.
	e3, _ := e1.Extend("Y", BindVal(oem.Int(9)))
	if _, bound := e1.Lookup("Y"); bound {
		t.Fatal("Extend mutated the receiver")
	}
	if len(e3) != 2 {
		t.Fatal("second Extend lost a binding")
	}
}

func TestEnvJoin(t *testing.T) {
	a, _ := Env(nil).Extend("R", BindString("employee"))
	a, _ = a.Extend("N", BindString("Joe Chung"))
	b, _ := Env(nil).Extend("R", BindString("employee"))
	b, _ = b.Extend("FN", BindString("Joe"))
	j, ok := a.Join(b)
	if !ok || len(j) != 3 {
		t.Fatalf("join = %v, %v", j, ok)
	}
	c, _ := Env(nil).Extend("R", BindString("student"))
	if _, ok := a.Join(c); ok {
		t.Fatal("join with conflicting R succeeded")
	}
	// Join with empty env.
	if j, ok := a.Join(nil); !ok || !j.Equal(a) {
		t.Fatal("join with empty env should be identity")
	}
}

func TestEnvProjectAndKey(t *testing.T) {
	e, _ := Env(nil).Extend("X", BindVal(oem.Int(1)))
	e, _ = e.Extend("Y", BindVal(oem.Int(2)))
	p := e.Project([]string{"X", "Z"})
	if len(p) != 1 {
		t.Fatalf("projection = %v", p)
	}
	e2, _ := Env(nil).Extend("X", BindVal(oem.Float(1)))
	if e.Key([]string{"X"}) != e2.Key([]string{"X"}) {
		t.Fatal("equal projections should yield equal keys")
	}
	if e.Key([]string{"X", "Y"}) == e2.Key([]string{"X", "Y"}) {
		t.Fatal("different projections should yield different keys")
	}
}

func TestEnvString(t *testing.T) {
	e, _ := Env(nil).Extend("B", BindVal(oem.Int(2)))
	e, _ = e.Extend("A", BindVal(oem.Int(1)))
	if got := e.String(); got != "{A -> 1, B -> 2}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDedupEnvs(t *testing.T) {
	mk := func(n int64, extra string) Env {
		e, _ := Env(nil).Extend("N", BindVal(oem.Int(n)))
		e, _ = e.Extend("Extra", BindString(extra))
		return e
	}
	envs := []Env{mk(1, "a"), mk(1, "b"), mk(2, "c"), mk(2, "d"), mk(1, "e")}
	got := DedupEnvs(envs, []string{"N"})
	if len(got) != 2 {
		t.Fatalf("dedup kept %d envs, want 2", len(got))
	}
	// Full projection keeps all.
	got2 := DedupEnvs(envs, []string{"N", "Extra"})
	if len(got2) != 5 {
		t.Fatalf("full-width dedup kept %d envs, want 5", len(got2))
	}
	// Dedup is stable: first occurrences survive in order.
	if b, _ := got[0].Lookup("Extra"); !b.Val.Equal(oem.String("a")) {
		t.Fatalf("dedup not stable: %v", got[0])
	}
}

func TestBindingAsValue(t *testing.T) {
	if v, ok := BindVal(oem.Int(3)).AsValue(); !ok || !v.Equal(oem.Int(3)) {
		t.Fatal("AsValue on value binding")
	}
	if _, ok := BindObj(oem.New("", "a", 1)).AsValue(); ok {
		t.Fatal("AsValue on object binding should fail")
	}
	if BindObj(oem.New("", "a", 1)).IsZero() {
		t.Fatal("object binding reported zero")
	}
	if !(Binding{}).IsZero() {
		t.Fatal("zero binding not reported zero")
	}
	if (Binding{}).String() != "<unbound>" {
		t.Fatal("zero binding String")
	}
}
