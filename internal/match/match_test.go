package match

import (
	"fmt"
	"strings"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// whoisObjects reproduces the paper's Figure 2.3.
func whoisObjects() []*oem.Object {
	return oem.MustParse(`
<&p1, person, set, {&n1, &d1, &rel1, &elm1}>
  <&n1, name, string, 'Joe Chung'>
  <&d1, dept, string, 'CS'>
  <&rel1, relation, string, 'employee'>
  <&elm1, e_mail, string, 'chung@cs'>
<&p2, person, set, {&n2, &d2, &rel2, &y2}>
  <&n2, name, string, 'Nick Naive'>
  <&d2, dept, string, 'CS'>
  <&rel2, relation, string, 'student'>
  <&y2, year, integer, 3>
;`)
}

// csObjects reproduces the paper's Figure 2.2.
func csObjects() []*oem.Object {
	return oem.MustParse(`
<&e1, employee, set, {&f1, &l1, &t1, &rep1}>
  <&f1, first_name, string, 'Joe'>
  <&l1, last_name, string, 'Chung'>
  <&t1, title, string, 'professor'>
  <&rep1, reports_to, string, 'John Hennessy'>
<&s1, student, set, {&f2, &l2, &y3}>
  <&f2, first_name, string, 'Nick'>
  <&l2, last_name, string, 'Naive'>
  <&y3, year, integer, 3>
;`)
}

func tailPattern(t *testing.T, src string) *msl.PatternConjunct {
	t.Helper()
	r, err := msl.ParseRule("X :- " + src + ".")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return r.Tail[0].(*msl.PatternConjunct)
}

// TestSpecMS1WhoisBindings reproduces binding b_w,1 from Section 2: the
// whois tail pattern of MS1 binds N to 'Joe Chung', R to 'employee', and
// Rest1 to the singleton e_mail set.
func TestSpecMS1WhoisBindings(t *testing.T) {
	pc := tailPattern(t, `<person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois`)
	envs, err := Tops(pc.Pattern, pc.ObjVar, whoisObjects(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("got %d bindings, want 2: %v", len(envs), envs)
	}
	bw1 := envs[0]
	if b, _ := bw1.Lookup("N"); !b.Val.Equal(oem.String("Joe Chung")) {
		t.Fatalf("N = %v", b)
	}
	if b, _ := bw1.Lookup("R"); !b.Val.Equal(oem.String("employee")) {
		t.Fatalf("R = %v", b)
	}
	rest, _ := bw1.Lookup("Rest1")
	set, ok := rest.Val.(oem.Set)
	if !ok || len(set) != 1 || set[0].Label != "e_mail" {
		t.Fatalf("Rest1 = %v", rest)
	}
	// Second binding: Nick Naive, student, Rest1 = {year}.
	bw2 := envs[1]
	if b, _ := bw2.Lookup("R"); !b.Val.Equal(oem.String("student")) {
		t.Fatalf("second R = %v", b)
	}
	rest2, _ := bw2.Lookup("Rest1")
	if set := rest2.Val.(oem.Set); len(set) != 1 || set[0].Label != "year" {
		t.Fatalf("second Rest1 = %v", rest2)
	}
}

// TestSpecMS1CSBindings reproduces binding b_c,1: the label variable R
// binds to the relation name — the schematic-discrepancy resolution.
func TestSpecMS1CSBindings(t *testing.T) {
	pc := tailPattern(t, `<R {<first_name FN> <last_name LN> | Rest2}>@cs`)
	envs, err := Tops(pc.Pattern, pc.ObjVar, csObjects(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("got %d bindings, want 2", len(envs))
	}
	bc1 := envs[0]
	if b, _ := bc1.Lookup("R"); !b.Val.Equal(oem.String("employee")) {
		t.Fatalf("R = %v", b)
	}
	if b, _ := bc1.Lookup("FN"); !b.Val.Equal(oem.String("Joe")) {
		t.Fatalf("FN = %v", b)
	}
	if b, _ := bc1.Lookup("LN"); !b.Val.Equal(oem.String("Chung")) {
		t.Fatalf("LN = %v", b)
	}
	rest, _ := bc1.Lookup("Rest2")
	set := rest.Val.(oem.Set)
	if len(set) != 2 {
		t.Fatalf("Rest2 has %d members, want 2 (title, reports_to)", len(set))
	}
}

// TestBindingJoin joins b_w,1 with b_c,1 on the shared variable R as the
// paper's matching step does.
func TestBindingJoin(t *testing.T) {
	w := tailPattern(t, `<person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois`)
	c := tailPattern(t, `<R {<first_name FN> <last_name LN> | Rest2}>@cs`)
	wEnvs, _ := Tops(w.Pattern, nil, whoisObjects(), nil)
	cEnvs, _ := Tops(c.Pattern, nil, csObjects(), nil)
	var joined []Env
	for _, we := range wEnvs {
		for _, ce := range cEnvs {
			if j, ok := we.Join(ce); ok {
				joined = append(joined, j)
			}
		}
	}
	// Joe/employee with employee-table row, Nick/student with student row.
	if len(joined) != 2 {
		t.Fatalf("join produced %d environments, want 2", len(joined))
	}
	for _, j := range joined {
		n, _ := j.Lookup("N")
		fn, _ := j.Lookup("FN")
		name, _ := n.AsValue()
		first, _ := fn.AsValue()
		if !strings.HasPrefix(string(name.(oem.String)), string(first.(oem.String))) {
			t.Fatalf("mismatched join: N=%v FN=%v", n, fn)
		}
	}
}

func TestSubsetSemanticsWithoutRest(t *testing.T) {
	// Q1's pattern names only <name …> but must match richer objects.
	pc := tailPattern(t, `JC:<cs_person {<name 'Joe Chung'>}>@med`)
	obj := oem.MustParse(`<&cp1, cs_person, set, {
	    <&mn1, name, 'Joe Chung'>, <&mr1, relation, 'employee'>, <&me1, e_mail, 'chung@cs'>}>`)[0]
	envs, err := Tops(pc.Pattern, pc.ObjVar, []*oem.Object{obj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d matches, want 1", len(envs))
	}
	jc, _ := envs[0].Lookup("JC")
	if jc.Obj == nil || jc.Obj.OID != "&cp1" {
		t.Fatalf("JC bound to %v", jc)
	}
}

func TestIrregularStructureTolerated(t *testing.T) {
	// &p2 has no e_mail; a pattern requiring e_mail matches only &p1.
	pc := tailPattern(t, `<person {<e_mail E>}>@whois`)
	envs, err := Tops(pc.Pattern, nil, whoisObjects(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d matches, want 1", len(envs))
	}
	if b, _ := envs[0].Lookup("E"); !b.Val.Equal(oem.String("chung@cs")) {
		t.Fatalf("E = %v", b)
	}
}

func TestLabelVariableRetrievesSchema(t *testing.T) {
	// Variables in label positions retrieve schema information.
	pc := tailPattern(t, `<person {<L V>}>@whois`)
	envs, err := Tops(pc.Pattern, nil, whoisObjects()[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, e := range envs {
		b, _ := e.Lookup("L")
		labels[string(b.Val.(oem.String))] = true
	}
	for _, want := range []string{"name", "dept", "relation", "e_mail"} {
		if !labels[want] {
			t.Errorf("label %q not retrieved (got %v)", want, labels)
		}
	}
}

func TestOIDFieldMatching(t *testing.T) {
	objs := whoisObjects()
	pc := tailPattern(t, `<&p2 person V>@whois`)
	envs, err := Tops(pc.Pattern, nil, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("oid constant match: %d envs", len(envs))
	}
	pc2 := tailPattern(t, `<I person V>@whois`)
	envs2, _ := Tops(pc2.Pattern, nil, objs, nil)
	if len(envs2) != 2 {
		t.Fatalf("oid variable match: %d envs", len(envs2))
	}
	ids := map[string]bool{}
	for _, e := range envs2 {
		b, _ := e.Lookup("I")
		ids[string(b.Val.(oem.String))] = true
	}
	if !ids["&p1"] || !ids["&p2"] {
		t.Fatalf("oid bindings: %v", ids)
	}
}

func TestTypeConstraint(t *testing.T) {
	objs := oem.MustParse(`<a, integer, 3> <a, string, '3'> <a, real, 3.0>`)
	pc := tailPattern(t, `<a integer V>@s`)
	envs, err := Tops(pc.Pattern, nil, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("type-constrained match: %d envs, want 1", len(envs))
	}
	if b, _ := envs[0].Lookup("V"); !b.Val.Equal(oem.Int(3)) {
		t.Fatalf("V = %v", b)
	}
}

func TestConstantValueCrossTypeEquality(t *testing.T) {
	objs := oem.MustParse(`<year, integer, 3> <year, real, 3.0> <year, string, '3'>`)
	pc := tailPattern(t, `<year 3>@s`)
	envs, err := Tops(pc.Pattern, nil, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 matches integer 3 and real 3.0 but not string '3'.
	if len(envs) != 2 {
		t.Fatalf("got %d matches, want 2", len(envs))
	}
}

func TestRestConstraints(t *testing.T) {
	// Qw-style: Rest1 must contain a <year 3> match.
	pc := tailPattern(t, `<person {<name N> | Rest1:{<year 3>}}>@whois`)
	envs, err := Tops(pc.Pattern, nil, whoisObjects(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d matches, want 1 (only Nick has year 3)", len(envs))
	}
	if b, _ := envs[0].Lookup("N"); !b.Val.Equal(oem.String("Nick Naive")) {
		t.Fatalf("N = %v", b)
	}
	// The constrained member stays inside the rest set.
	rest, _ := envs[0].Lookup("Rest1")
	found := false
	for _, m := range rest.Val.(oem.Set) {
		if m.Label == "year" {
			found = true
		}
	}
	if !found {
		t.Fatal("year object missing from constrained rest set")
	}
}

func TestRestConstraintBindsVariables(t *testing.T) {
	pc := tailPattern(t, `<person {<name N> | R:{<relation Rel>}}>@whois`)
	envs, err := Tops(pc.Pattern, nil, whoisObjects(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("got %d matches", len(envs))
	}
	for _, e := range envs {
		if b, ok := e.Lookup("Rel"); !ok || b.IsZero() {
			t.Fatalf("Rel unbound in %v", e)
		}
	}
}

func TestInjectiveElementMatching(t *testing.T) {
	// Two elements with the same label must match distinct subobjects.
	obj := oem.MustParse(`<p, set, {<a, 1>, <a, 2>}>`)[0]
	pc := tailPattern(t, `<p {<a X> <a Y>}>@s`)
	envs, err := Tops(pc.Pattern, nil, []*oem.Object{obj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (X=1,Y=2) and (X=2,Y=1).
	if len(envs) != 2 {
		t.Fatalf("got %d assignments, want 2", len(envs))
	}
	for _, e := range envs {
		x, _ := e.Lookup("X")
		y, _ := e.Lookup("Y")
		if x.Equal(y) {
			t.Fatalf("element patterns matched the same subobject: %v", e)
		}
	}
	// A single subobject cannot satisfy two element patterns.
	one := oem.MustParse(`<p, set, {<a, 1>}>`)[0]
	envs2, _ := Tops(pc.Pattern, nil, []*oem.Object{one}, nil)
	if len(envs2) != 0 {
		t.Fatalf("injectivity violated: %v", envs2)
	}
}

func TestVariableSetElement(t *testing.T) {
	obj := whoisObjects()[0]
	pc := tailPattern(t, `<person {X | R}>@whois`)
	envs, err := Tops(pc.Pattern, nil, []*oem.Object{obj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 4 {
		t.Fatalf("variable element should enumerate 4 subobjects, got %d", len(envs))
	}
	for _, e := range envs {
		x, _ := e.Lookup("X")
		if x.Obj == nil {
			t.Fatalf("X should bind a whole object, got %v", x)
		}
		r, _ := e.Lookup("R")
		if len(r.Val.(oem.Set)) != 3 {
			t.Fatalf("rest should hold the other 3 subobjects, got %v", r)
		}
	}
}

func TestWildcardDescent(t *testing.T) {
	deep := oem.MustParse(`<lib, set, {
	    <book, set, {<title, 'TAOCP'>, <chapter, set, {<title, 'Basics'>}>}>
	}>`)[0]
	pc := tailPattern(t, `X:<%title T>@lib`)
	envs, err := Tops(pc.Pattern, pc.ObjVar, []*oem.Object{deep}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("wildcard found %d titles, want 2", len(envs))
	}
	// Non-wildcard top-level pattern finds none (title is nested).
	flat := tailPattern(t, `X:<title T>@lib`)
	envs2, _ := Tops(flat.Pattern, flat.ObjVar, []*oem.Object{deep}, nil)
	if len(envs2) != 0 {
		t.Fatalf("non-wildcard matched nested titles: %v", envs2)
	}
}

// sharedDAG builds a chain of depth levels where every level holds the
// same child pointer twice, so the object has 2^depth root-to-leaf paths
// but only depth+1 distinct nodes. OEM values really take this shape:
// fusion and shared construction alias subobjects rather than copy them.
func sharedDAG(depth int) *oem.Object {
	cur := oem.New("&leaf", "title", "TAOCP")
	for d := 0; d < depth; d++ {
		cur = oem.NewSet(oem.OID(fmt.Sprintf("&n%d", d)), "node", cur, cur)
	}
	return cur
}

// TestWildcardDAGSharedSubobjects: wildcard descent over a pointer-shared
// DAG must visit each distinct node once. Before memoization the walk
// re-explored the shared child per path — 2^30 visits here, which does
// not terminate in any reasonable time — and the duplicate visits only
// produced duplicate environments.
func TestWildcardDAGSharedSubobjects(t *testing.T) {
	dag := sharedDAG(30)
	pc := tailPattern(t, `X:<%title T>@lib`)
	envs, err := Tops(pc.Pattern, pc.ObjVar, []*oem.Object{dag}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One distinct title node, one env — not 2^30 copies of it.
	if len(envs) != 1 {
		t.Fatalf("shared leaf matched %d times, want 1", len(envs))
	}
	if b, _ := envs[0].Lookup("T"); !b.Val.Equal(oem.String("TAOCP")) {
		t.Fatalf("T = %v", b)
	}
}

// TestWildcardElementDAGSharedSubobjects covers the in-set wildcard
// element path through the same sharing.
func TestWildcardElementDAGSharedSubobjects(t *testing.T) {
	inner := sharedDAG(28)
	lib := oem.NewSet("&lib", "lib", oem.New("&nm", "name", "Main"), inner)
	pc := tailPattern(t, `<lib {<name N> <%title T>}>@s`)
	envs, err := Tops(pc.Pattern, nil, []*oem.Object{lib}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d matches, want 1", len(envs))
	}
	if b, _ := envs[0].Lookup("T"); !b.Val.Equal(oem.String("TAOCP")) {
		t.Fatalf("T = %v", b)
	}
}

func BenchmarkWildcardSharedDAG(b *testing.B) {
	dag := sharedDAG(20)
	r, err := msl.ParseRule("X :- X:<%title T>@lib.")
	if err != nil {
		b.Fatal(err)
	}
	pc := r.Tail[0].(*msl.PatternConjunct)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		envs, err := Tops(pc.Pattern, pc.ObjVar, []*oem.Object{dag}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(envs) != 1 {
			b.Fatalf("got %d envs", len(envs))
		}
	}
}

func TestWildcardElementInsideSet(t *testing.T) {
	deep := oem.MustParse(`<lib, set, {
	    <shelf, set, {<book, set, {<title, 'TAOCP'>}>}>,
	    <name, 'Main'>
	}>`)[0]
	pc := tailPattern(t, `<lib {<name N> <%title T>}>@s`)
	envs, err := Tops(pc.Pattern, nil, []*oem.Object{deep}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d matches, want 1", len(envs))
	}
	if b, _ := envs[0].Lookup("T"); !b.Val.Equal(oem.String("TAOCP")) {
		t.Fatalf("T = %v", b)
	}
}

func TestSharedVariableWithinPattern(t *testing.T) {
	// The same variable twice forces equal values.
	objs := oem.MustParse(`
	<pair, set, {<a, 1>, <b, 1>}>
	<pair, set, {<a, 1>, <b, 2>}>`)
	pc := tailPattern(t, `<pair {<a X> <b X>}>@s`)
	envs, err := Tops(pc.Pattern, nil, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d matches, want 1", len(envs))
	}
}

func TestPreboundEnvironmentFiltering(t *testing.T) {
	pc := tailPattern(t, `<person {<name N> <relation R>}>@whois`)
	pre, _ := Env(nil).Extend("R", BindString("student"))
	envs, err := Tops(pc.Pattern, nil, whoisObjects(), pre)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("prebound filter: %d matches, want 1", len(envs))
	}
	if b, _ := envs[0].Lookup("N"); !b.Val.Equal(oem.String("Nick Naive")) {
		t.Fatalf("N = %v", b)
	}
}

func TestUnsubstitutedParamIsError(t *testing.T) {
	pc := tailPattern(t, `<$R {<last_name $LN>}>@cs`)
	if _, err := Tops(pc.Pattern, nil, csObjects(), nil); err == nil {
		t.Fatal("unsubstituted parameter should be an error")
	}
}

func TestAtomicObjectAgainstSetPattern(t *testing.T) {
	atom := oem.MustParse(`<name, 'Joe'>`)[0]
	pc := tailPattern(t, `<name {<x Y>}>@s`)
	envs, err := Tops(pc.Pattern, nil, []*oem.Object{atom}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 0 {
		t.Fatal("set pattern matched an atomic object")
	}
}

func TestEmptySetPatternMatchesAnySetObject(t *testing.T) {
	objs := oem.MustParse(`<p, set, {}> <p, set, {<a, 1>}> <p, 'atom'>`)
	pc := tailPattern(t, `<p {}>@s`)
	envs, err := Tops(pc.Pattern, nil, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("empty set pattern matched %d objects, want 2 (set-valued only)", len(envs))
	}
}
