package match

import (
	"fmt"
	"math/rand"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// randomPerson builds a person object with a random subset of known
// attributes plus random noise attributes.
func randomPerson(r *rand.Rand, i int) *oem.Object {
	subs := oem.Set{oem.New("", "name", fmt.Sprintf("P%03d", i))}
	if r.Intn(2) == 0 {
		subs = append(subs, oem.New("", "dept", []string{"CS", "EE"}[r.Intn(2)]))
	}
	if r.Intn(2) == 0 {
		subs = append(subs, oem.New("", "year", 1+r.Intn(5)))
	}
	for n := r.Intn(3); n > 0; n-- {
		subs = append(subs, oem.New("", fmt.Sprintf("noise%d", r.Intn(5)), r.Intn(10)))
	}
	return oem.NewSet("", "person", subs...)
}

var propPatterns = []string{
	`<person {<name N>}>`,
	`<person {<name N> <dept 'CS'>}>`,
	`<person {<name N> <year Y> | R}>`,
	`<person {<dept D> | R:{<year Y>}}>`,
	`<L {<name N>}>`,
	`<person {X | R}>`,
}

func parsePattern(t *testing.T, src string) *msl.ObjectPattern {
	t.Helper()
	r, err := msl.ParseRule("X :- X:" + src + "@s.")
	if err != nil {
		t.Fatal(err)
	}
	return r.Tail[0].(*msl.PatternConjunct).Pattern
}

// TestPropMonotonicUnderSubobjectAddition: adding unrelated subobjects to
// an object never removes matches — the essence of OEM's subset
// semantics, which is what keeps specifications alive under schema
// evolution. (Match counts may grow, e.g. for variable elements.)
func TestPropMonotonicUnderSubobjectAddition(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, psrc := range propPatterns {
		p := parsePattern(t, psrc)
		for trial := 0; trial < 60; trial++ {
			obj := randomPerson(r, trial)
			before, err := Object(p, obj, nil)
			if err != nil {
				t.Fatal(err)
			}
			grown := obj.Clone()
			grown.Value = append(grown.Subobjects(),
				oem.New("", fmt.Sprintf("added%d", trial), "extra"))
			after, err := Object(p, grown, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(before) > 0 && len(after) == 0 {
				t.Fatalf("pattern %s lost its match after adding a subobject:\n%s",
					psrc, oem.Format(grown))
			}
			if len(after) < len(before) {
				t.Fatalf("pattern %s match count dropped %d -> %d after adding a subobject",
					psrc, len(before), len(after))
			}
		}
	}
}

// TestPropRestPartition: when a pattern with a rest variable matches, the
// consumed elements plus the rest set partition the subobjects (the rest
// holds exactly the unconsumed ones).
func TestPropRestPartition(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	p := parsePattern(t, `<person {<name N> | R}>`)
	for trial := 0; trial < 80; trial++ {
		obj := randomPerson(r, trial)
		envs, err := Object(p, obj, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, env := range envs {
			rest, _ := env.Lookup("R")
			set, ok := rest.Val.(oem.Set)
			if !ok {
				t.Fatalf("rest not a set: %v", rest)
			}
			if len(set) != len(obj.Subobjects())-1 {
				t.Fatalf("rest size %d, want %d", len(set), len(obj.Subobjects())-1)
			}
			// The consumed name subobject is not in the rest.
			n, _ := env.Lookup("N")
			for _, m := range set {
				if m.Label == "name" {
					if v, _ := m.AtomString(); n.Val.Equal(oem.String(v)) {
						t.Fatalf("consumed subobject leaked into rest: %v", env)
					}
				}
			}
		}
	}
}

// TestPropEnvExtensionMonotonic: matching under a pre-bound environment
// returns a subset of the unconstrained matches (each joinable with the
// pre-binding).
func TestPropEnvExtensionMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	p := parsePattern(t, `<person {<name N> <dept D>}>`)
	for trial := 0; trial < 60; trial++ {
		obj := randomPerson(r, trial)
		free, err := Object(p, obj, nil)
		if err != nil {
			t.Fatal(err)
		}
		pre, _ := Env(nil).Extend("D", BindString("CS"))
		bound, err := Object(p, obj, pre)
		if err != nil {
			t.Fatal(err)
		}
		if len(bound) > len(free) {
			t.Fatalf("pre-binding increased matches: %d > %d", len(bound), len(free))
		}
		for _, env := range bound {
			d, _ := env.Lookup("D")
			if !d.Val.Equal(oem.String("CS")) {
				t.Fatalf("pre-binding violated: %v", env)
			}
		}
	}
}
