// Package build constructs rule-head objects: the constructor half of MSL
// semantics (Section 2.3 of the paper). Given the head of a datamerge rule
// and one environment of variable bindings produced by matching the tail,
// Head materializes the result objects the rule promises.
//
// Construction follows docs/MSL.md: constants become fixed labels and
// values; variables are replaced by their bindings; a set-bound variable
// appearing as a set element is flattened one level, so rest variables
// splice the unmatched subobjects of a source object into the result; an
// object-bound variable inserts a copy of the object as a subobject.
// Everything constructed — including material copied out of source
// objects — receives fresh object-ids from the supplied generator, in
// pre-order, except ids fixed by the head itself: a Skolem term
// f(args) yields a deterministic "semantic" oid derived from its resolved
// arguments, so objects built by different rules from the same entity
// share an id and can be fused downstream.
package build

import (
	"fmt"
	"strings"

	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Head materializes the objects a rule head describes under one binding
// environment. A bare variable head term passes the bound object through
// untouched (it already exists); an object-pattern head term constructs a
// fresh object tree and assigns oids from gen.
func Head(head []msl.HeadTerm, env match.Env, gen *oem.IDGen) ([]*oem.Object, error) {
	out := make([]*oem.Object, 0, len(head))
	for _, h := range head {
		switch t := h.(type) {
		case *msl.Var:
			b, ok := env.Lookup(t.Name)
			if !ok {
				return nil, fmt.Errorf("build: head variable %s is unbound", t.Name)
			}
			if b.Obj == nil {
				return nil, fmt.Errorf("build: head variable %s is not bound to an object", t.Name)
			}
			out = append(out, b.Obj)
		case *msl.ObjectPattern:
			obj, err := construct(t, env, gen)
			if err != nil {
				return nil, err
			}
			oem.AssignOIDs(obj, gen)
			out = append(out, obj)
		default:
			return nil, fmt.Errorf("build: unsupported head term %T", h)
		}
	}
	return out, nil
}

// construct builds the object tree for one head pattern, leaving oids nil
// except where the head fixes them (constants, Skolem terms).
func construct(p *msl.ObjectPattern, env match.Env, gen *oem.IDGen) (*oem.Object, error) {
	if p.Wildcard {
		return nil, fmt.Errorf("build: wildcard pattern %s cannot appear in a rule head", p)
	}
	obj := &oem.Object{}
	label, err := headLabel(p.Label, env)
	if err != nil {
		return nil, err
	}
	obj.Label = label
	if p.OID != nil {
		oid, err := headOID(p.OID, env)
		if err != nil {
			return nil, err
		}
		obj.OID = oid
	}
	if err := headValue(obj, p.Value, env, gen); err != nil {
		return nil, err
	}
	return obj, nil
}

func headLabel(t msl.Term, env match.Env) (string, error) {
	switch x := t.(type) {
	case *msl.Const:
		s, ok := x.Value.(oem.String)
		if !ok {
			return "", fmt.Errorf("build: head label %s is not a string", x)
		}
		return string(s), nil
	case *msl.Var:
		b, ok := env.Lookup(x.Name)
		if !ok {
			return "", fmt.Errorf("build: head label variable %s is unbound", x.Name)
		}
		v, atomic := b.AsValue()
		if !atomic {
			return "", fmt.Errorf("build: head label variable %s is not bound to a value", x.Name)
		}
		s, ok := v.(oem.String)
		if !ok {
			return "", fmt.Errorf("build: head label variable %s bound to non-string %s", x.Name, v)
		}
		return string(s), nil
	case *msl.Param:
		return "", fmt.Errorf("build: unsubstituted parameter $%s in head label", x.Name)
	}
	return "", fmt.Errorf("build: unsupported head label term %T", t)
}

func headOID(t msl.Term, env match.Env) (oem.OID, error) {
	switch x := t.(type) {
	case *msl.Const:
		s, ok := x.Value.(oem.String)
		if !ok {
			return oem.NilOID, fmt.Errorf("build: head oid %s is not a string", x)
		}
		return oem.OID(s), nil
	case *msl.Var:
		b, ok := env.Lookup(x.Name)
		if !ok {
			return oem.NilOID, fmt.Errorf("build: head oid variable %s is unbound", x.Name)
		}
		if b.Obj != nil {
			return b.Obj.OID, nil
		}
		if v, atomic := b.AsValue(); atomic {
			if s, ok := v.(oem.String); ok {
				return oem.OID(s), nil
			}
		}
		return oem.NilOID, fmt.Errorf("build: head oid variable %s has no usable binding", x.Name)
	case *msl.Skolem:
		return skolemOID(x, env)
	}
	return oem.NilOID, fmt.Errorf("build: unsupported head oid term %T", t)
}

// skolemOID derives the semantic object-id for a Skolem term: the functor
// applied to the textual form of its resolved arguments, e.g.
// &person('Joe Chung'). Equal arguments yield equal oids no matter which
// rule constructed the object, which is what lets the fusion step merge
// fragments of the same entity (Section 2.4).
func skolemOID(s *msl.Skolem, env match.Env) (oem.OID, error) {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		switch x := a.(type) {
		case *msl.Const:
			parts[i] = x.Value.String()
		case *msl.Var:
			b, ok := env.Lookup(x.Name)
			if !ok {
				return oem.NilOID, fmt.Errorf("build: skolem argument %s is unbound", x.Name)
			}
			if v, atomic := b.AsValue(); atomic {
				parts[i] = v.String()
			} else if b.Obj != nil {
				parts[i] = string(b.Obj.OID)
			} else {
				return oem.NilOID, fmt.Errorf("build: skolem argument %s has no usable binding", x.Name)
			}
		default:
			return oem.NilOID, fmt.Errorf("build: unsupported skolem argument %T", a)
		}
	}
	return oem.OID("&" + s.Functor + "(" + strings.Join(parts, ", ") + ")"), nil
}

func headValue(obj *oem.Object, t msl.Term, env match.Env, gen *oem.IDGen) error {
	switch x := t.(type) {
	case nil:
		// A bare <label> head constructs an empty set object.
		obj.Value = oem.Set{}
		return nil
	case *msl.Const:
		obj.Value = x.Value
		return nil
	case *msl.Param:
		return fmt.Errorf("build: unsubstituted parameter $%s in head value", x.Name)
	case *msl.Var:
		b, ok := env.Lookup(x.Name)
		if !ok {
			return fmt.Errorf("build: head value variable %s is unbound", x.Name)
		}
		if v, atomic := b.AsValue(); atomic {
			if set, isSet := v.(oem.Set); isSet {
				// A set-bound variable in value position: the object's
				// value is a copy of the set (Qw's bind_for_Rest1).
				members := make(oem.Set, len(set))
				for i, m := range set {
					members[i] = copied(m)
				}
				obj.Value = members
				return nil
			}
			obj.Value = v
			return nil
		}
		if b.Obj != nil {
			// An object-bound variable in value position inserts the
			// object as the sole subobject.
			obj.Value = oem.Set{copied(b.Obj)}
			return nil
		}
		return fmt.Errorf("build: head value variable %s has no usable binding", x.Name)
	case *msl.SetPattern:
		members := oem.Set{}
		for _, e := range x.Elems {
			switch el := e.(type) {
			case *msl.ObjectPattern:
				sub, err := construct(el, env, gen)
				if err != nil {
					return err
				}
				members = append(members, sub)
			case *msl.Var:
				b, ok := env.Lookup(el.Name)
				if !ok {
					return fmt.Errorf("build: head set variable %s is unbound", el.Name)
				}
				if b.Obj != nil {
					members = append(members, copied(b.Obj))
					break
				}
				if v, atomic := b.AsValue(); atomic {
					if set, isSet := v.(oem.Set); isSet {
						// Set-bound variables flatten one level: the
						// members join the constructed set directly, so
						// rest variables splice unmatched subobjects in.
						for _, m := range set {
							members = append(members, copied(m))
						}
						break
					}
					return fmt.Errorf("build: atomic-bound variable %s may only appear in a value position", el.Name)
				}
				return fmt.Errorf("build: head set variable %s has no usable binding", el.Name)
			default:
				return fmt.Errorf("build: unsupported head set element %T", e)
			}
		}
		if x.Rest != nil {
			b, ok := env.Lookup(x.Rest.Name)
			if !ok {
				return fmt.Errorf("build: head rest variable %s is unbound", x.Rest.Name)
			}
			v, atomic := b.AsValue()
			set, isSet := v.(oem.Set)
			if !atomic || !isSet {
				return fmt.Errorf("build: head rest variable %s is not bound to a set", x.Rest.Name)
			}
			for _, m := range set {
				members = append(members, copied(m))
			}
		}
		obj.Value = members
		return nil
	}
	return fmt.Errorf("build: unsupported head value term %T", t)
}

// copied deep-copies source material into a constructed result, clearing
// every oid so the generator assigns fresh ones: constructed objects never
// alias the ids of the objects they were derived from.
func copied(o *oem.Object) *oem.Object {
	cp := o.Clone()
	cp.Walk(func(w *oem.Object, _ int) bool {
		w.OID = oem.NilOID
		return true
	})
	return cp
}
