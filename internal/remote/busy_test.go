package remote

import (
	"errors"
	"testing"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
)

func mustParseQuery(t *testing.T, text string) *msl.Rule {
	t.Helper()
	q, err := msl.ParseQuery(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// A server at its connection bound must refuse the excess connection with
// a typed busy response — not stall it in the accept backlog — while the
// admitted connection keeps working, and a freed slot must admit the next
// client.
func TestServerMaxConnsBusy(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := NewServer(whoisSource(t))
	srv.MaxConns = 1
	srv.Metrics = reg
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// first's pooled connection occupies the single slot.
	if _, err := Dial(addr, time.Second); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("second dial: err = %v, want ErrServerBusy", err)
	}

	// The refusal must not have disturbed the admitted client.
	q, err := first.Query(mustParseQuery(t, `P :- P:<person {<dept 'CS'>}>@whois.`))
	if err != nil {
		t.Fatalf("admitted client failed after a refusal: %v", err)
	}
	if len(q) != 2 {
		t.Fatalf("admitted client got %d objects, want 2", len(q))
	}

	busy := counterValue(reg, "remote.busy")
	if busy != 1 {
		t.Fatalf("remote.busy = %d, want 1", busy)
	}

	// Freeing the slot readmits: the server notices the close
	// asynchronously, so poll briefly.
	first.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		next, err := Dial(addr, time.Second)
		if err == nil {
			next.Close()
			break
		}
		if !errors.Is(err, ErrServerBusy) {
			t.Fatalf("redial after close: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after the admitted client closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// MaxConns < 0 disables the gate entirely.
func TestServerMaxConnsUnlimited(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.MaxConns = -1
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clients := make([]*Client, 5)
	for i := range clients {
		c, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		clients[i] = c
	}
}

func counterValue(reg *metrics.Registry, name string) int64 {
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
