package remote

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Client is a wrapper.Source backed by a remote Server. It maintains a
// small pool of connections so concurrent queries (the engine's parallel
// fan-out) proceed without serializing, dialing lazily and redialing
// transparently when a connection drops. Use Dial to construct one.
type Client struct {
	addr    string
	timeout time.Duration
	name    string
	caps    wrapper.Capabilities

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// maxIdleConns bounds the pool; additional concurrent queries dial
// transient connections that are closed when the pool is full.
const maxIdleConns = 8

var (
	_ wrapper.Source       = (*Client)(nil)
	_ wrapper.BatchQuerier = (*Client)(nil)
)

// Dial connects to a remote wrapper and performs the handshake that
// fetches its name and capabilities. timeout bounds dialing and each
// round trip (0 means 10s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	c := &Client{addr: addr, timeout: timeout}
	resp, err := c.roundTrip(Request{Kind: reqHello})
	if err != nil {
		return nil, err
	}
	c.name = resp.Name
	c.caps = resp.Caps
	return c, nil
}

// Name implements wrapper.Source.
func (c *Client) Name() string { return c.name }

// Capabilities implements wrapper.Source.
func (c *Client) Capabilities() wrapper.Capabilities { return c.caps }

// Query implements wrapper.Source: the rule is shipped as MSL text and
// the result objects come back over the wire. Query is safe for
// concurrent use.
func (c *Client) Query(q *msl.Rule) ([]*oem.Object, error) {
	resp, err := c.roundTrip(Request{Kind: reqQuery, Query: q.String()})
	if err != nil {
		return nil, err
	}
	if resp.Unsupported != "" {
		return nil, &wrapper.UnsupportedError{Source: c.name, Feature: resp.Unsupported}
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("remote: %s: %s", c.name, resp.Err)
	}
	out := make([]*oem.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		obj, err := FromWire(w)
		if err != nil {
			return nil, err
		}
		out[i] = obj
	}
	return out, nil
}

// QueryBatch implements wrapper.BatchQuerier: several queries travel in
// one network round-trip and the result sets come back in request order.
// This is what makes the engine's parameterized-query batching pay off
// against remote sources — a batch of k instantiated queries costs one
// exchange instead of k.
func (c *Client) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	texts := make([]string, len(qs))
	for i, q := range qs {
		texts[i] = q.String()
	}
	resp, err := c.roundTrip(Request{Kind: reqBatch, Queries: texts})
	if err != nil {
		return nil, err
	}
	if resp.Unsupported != "" {
		return nil, &wrapper.UnsupportedError{Source: c.name, Feature: resp.Unsupported}
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("remote: %s: %s", c.name, resp.Err)
	}
	if len(resp.Batches) != len(qs) {
		return nil, fmt.Errorf("remote: %s: batch answer carries %d result sets for %d queries",
			c.name, len(resp.Batches), len(qs))
	}
	out := make([][]*oem.Object, len(resp.Batches))
	for i, batch := range resp.Batches {
		objs := make([]*oem.Object, len(batch))
		for j, w := range batch {
			obj, err := FromWire(w)
			if err != nil {
				return nil, err
			}
			objs[j] = obj
		}
		out[i] = objs
	}
	return out, nil
}

// CountLabel implements wrapper.Counter over the wire, letting the
// optimizer probe remote sources for cold-start cardinalities. A network
// failure degrades to "cannot count" rather than an error.
func (c *Client) CountLabel(label string) (int, bool) {
	resp, err := c.roundTrip(Request{Kind: reqCount, Label: label})
	if err != nil || !resp.CountOK {
		return 0, false
	}
	return resp.Count, true
}

// Close tears down all pooled connections; in-flight queries finish on
// their own connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	var first error
	for _, cc := range c.idle {
		if err := cc.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.idle = nil
	return first
}

func (c *Client) acquire() (*clientConn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *Client) release(cc *clientConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < maxIdleConns {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.conn.Close()
}

// roundTrip sends one request and reads one response on a pooled
// connection. A broken pooled connection is retried once with a fresh
// dial (the server may have restarted).
func (c *Client) roundTrip(req Request) (Response, error) {
	for attempt := 0; ; attempt++ {
		cc, err := c.acquire()
		if err != nil {
			return Response{}, err
		}
		cc.conn.SetDeadline(time.Now().Add(c.timeout))
		var resp Response
		err = cc.enc.Encode(req)
		if err == nil {
			err = cc.dec.Decode(&resp)
		}
		if err == nil {
			cc.conn.SetDeadline(time.Time{})
			c.release(cc)
			return resp, nil
		}
		cc.conn.Close()
		if attempt >= 1 {
			return Response{}, fmt.Errorf("remote: %s: %w", c.addr, err)
		}
		// Drop every pooled connection: if ours broke, the rest are
		// probably stale too.
		c.mu.Lock()
		for _, stale := range c.idle {
			stale.conn.Close()
		}
		c.idle = nil
		c.mu.Unlock()
	}
}
