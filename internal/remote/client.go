package remote

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Client is a wrapper.Source backed by a remote Server. Against a server
// that accepts the framed protocol (ProtoFramed), every request travels
// as an ID-tagged frame on one shared multiplexed connection: concurrent
// queries (the engine's parallel fan-out) interleave their frames and
// responses return out of order, each matched back to its caller by ID —
// no per-burst dialing, one socket per peer. Against an old server the
// client falls back transparently to the original protocol, keeping a
// small pool of lockstep connections and redialing as needed. Use Dial
// to construct one.
type Client struct {
	addr    string
	timeout time.Duration
	name    string
	caps    wrapper.Capabilities
	proto   atomic.Int32

	mu     sync.Mutex
	idle   []*clientConn
	closed bool

	muxMu sync.Mutex
	mux   *muxConn

	frameLog atomic.Pointer[FrameLog]
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// maxIdleConns bounds the unframed fallback pool; additional concurrent
// queries dial transient connections that are closed when the pool is
// full.
const maxIdleConns = 8

var (
	_ wrapper.Source              = (*Client)(nil)
	_ wrapper.BatchQuerier        = (*Client)(nil)
	_ wrapper.ContextSource       = (*Client)(nil)
	_ wrapper.ContextBatchQuerier = (*Client)(nil)
)

// Dial connects to a remote wrapper and performs the handshake that
// fetches its name and capabilities and negotiates the protocol version.
// timeout bounds dialing and each round trip (0 means 10s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	c := &Client{addr: addr, timeout: timeout}
	resp, err := c.negotiate(context.Background())
	if err != nil {
		return nil, err
	}
	if err := respError(addr, resp); err != nil {
		return nil, err // e.g. ErrServerBusy from a server at capacity
	}
	c.name = resp.Name
	c.caps = resp.Caps
	return c, nil
}

// negotiate dials a fresh connection, performs the unframed hello that
// offers ProtoFramed, and installs the connection per the server's
// answer: an accepting server's connection becomes the shared mux, an
// old server's goes to the lockstep pool and the client stays unframed.
func (c *Client) negotiate(ctx context.Context) (Response, error) {
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return Response{}, fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	conn.SetDeadline(time.Now().Add(c.timeout))
	var resp Response
	err = enc.Encode(Request{Kind: reqHello, Proto: ProtoFramed})
	if err == nil {
		err = dec.Decode(&resp)
	}
	if err != nil {
		conn.Close()
		return Response{}, fmt.Errorf("remote: %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Time{})
	if err := respError(c.addr, resp); err != nil {
		conn.Close() // a refusal (busy) leaves no usable connection
		return resp, nil
	}
	if resp.Proto >= ProtoFramed {
		c.proto.Store(ProtoFramed)
		m := newMuxConn(conn, enc, dec, c.timeout, &c.frameLog)
		c.muxMu.Lock()
		old := c.mux
		c.mux = m
		closed := c.closed
		c.muxMu.Unlock()
		if old != nil {
			old.fail(errors.New("remote: connection replaced"))
		}
		if closed {
			m.fail(errors.New("remote: client closed"))
		}
		return resp, nil
	}
	c.proto.Store(ProtoUnframed)
	c.release(&clientConn{conn: conn, enc: enc, dec: dec})
	return resp, nil
}

// Proto reports the negotiated protocol version: ProtoFramed when the
// server accepted multiplexing, ProtoUnframed when the client fell back
// to the lockstep protocol.
func (c *Client) Proto() int { return int(c.proto.Load()) }

// Name implements wrapper.Source.
func (c *Client) Name() string { return c.name }

// Capabilities implements wrapper.Source.
func (c *Client) Capabilities() wrapper.Capabilities { return c.caps }

// Query implements wrapper.Source: the rule is shipped as MSL text and
// the result objects come back over the wire. Query is safe for
// concurrent use.
func (c *Client) Query(q *msl.Rule) ([]*oem.Object, error) {
	return c.QueryContext(context.Background(), q)
}

// QueryContext implements wrapper.ContextSource. The context bounds the
// whole round trip — dialing, writing, and waiting for the answer — and
// its remaining deadline budget travels with the request so the server
// abandons evaluation the client will no longer wait for.
func (c *Client) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	resp, err := c.roundTrip(ctx, Request{Kind: reqQuery, Query: q.String()})
	if err != nil {
		return nil, err
	}
	if err := respError(c.name, resp); err != nil {
		return nil, err
	}
	out := make([]*oem.Object, len(resp.Objects))
	for i, w := range resp.Objects {
		obj, err := FromWire(w)
		if err != nil {
			return nil, err
		}
		out[i] = obj
	}
	return out, nil
}

// QueryBatch implements wrapper.BatchQuerier: several queries travel in
// one network round-trip and the result sets come back in request order.
// This is what makes the engine's parameterized-query batching pay off
// against remote sources — a batch of k instantiated queries costs one
// exchange instead of k.
func (c *Client) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return c.QueryBatchContext(context.Background(), qs)
}

// QueryBatchContext implements wrapper.ContextBatchQuerier: QueryBatch
// bounded by ctx the same way QueryContext is.
func (c *Client) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	texts := make([]string, len(qs))
	for i, q := range qs {
		texts[i] = q.String()
	}
	resp, err := c.roundTrip(ctx, Request{Kind: reqBatch, Queries: texts})
	if err != nil {
		return nil, err
	}
	if err := respError(c.name, resp); err != nil {
		return nil, err
	}
	if len(resp.Batches) != len(qs) {
		return nil, fmt.Errorf("remote: %s: batch answer carries %d result sets for %d queries",
			c.name, len(resp.Batches), len(qs))
	}
	out := make([][]*oem.Object, len(resp.Batches))
	for i, batch := range resp.Batches {
		objs := make([]*oem.Object, len(batch))
		for j, w := range batch {
			obj, err := FromWire(w)
			if err != nil {
				return nil, err
			}
			objs[j] = obj
		}
		out[i] = objs
	}
	return out, nil
}

// Metrics scrapes the server process's metrics registry: request counts
// and latency histograms per request kind, plus whatever else that
// process records into the registry the server was given (the engine's
// exchange counters when the remote process is itself a mediator). An
// old server that predates the metrics request answers with the field
// absent, which surfaces as an error rather than an empty snapshot.
func (c *Client) Metrics(ctx context.Context) (*metrics.Snapshot, error) {
	resp, err := c.roundTrip(ctx, Request{Kind: reqMetrics})
	if err != nil {
		return nil, err
	}
	if err := respError(c.name, resp); err != nil {
		return nil, err
	}
	if resp.Metrics == nil {
		return nil, fmt.Errorf("remote: %s: server does not serve metrics", c.name)
	}
	return resp.Metrics, nil
}

// CountLabel implements wrapper.Counter over the wire, letting the
// optimizer probe remote sources for cold-start cardinalities. A network
// failure degrades to "cannot count" rather than an error.
func (c *Client) CountLabel(label string) (int, bool) {
	resp, err := c.roundTrip(context.Background(), Request{Kind: reqCount, Label: label})
	if err != nil || !resp.CountOK {
		return 0, false
	}
	return resp.Count, true
}

// ErrServerBusy reports a connection refused by a server at its
// connection bound (Server.MaxConns). Match with errors.Is and back off —
// the server is healthy, just full.
var ErrServerBusy = errors.New("server busy")

// respError converts a Response's error fields back into the typed error
// the server-side evaluation produced: a capability rejection, a busy
// refusal (wrapped so errors.Is matches ErrServerBusy), a context error
// from the request's deadline budget (wrapped so errors.Is matches
// context.DeadlineExceeded/Canceled), or a plain remote error.
func respError(name string, resp Response) error {
	if resp.Unsupported != "" {
		return &wrapper.UnsupportedError{Source: name, Feature: resp.Unsupported}
	}
	if resp.Busy {
		return fmt.Errorf("remote: %s: %w", name, ErrServerBusy)
	}
	if resp.Err == "" {
		return nil
	}
	switch resp.CtxErr {
	case "deadline":
		return fmt.Errorf("remote: %s: %w", name, context.DeadlineExceeded)
	case "canceled":
		return fmt.Errorf("remote: %s: %w", name, context.Canceled)
	}
	return fmt.Errorf("remote: %s: %s", name, resp.Err)
}

// Close tears down the multiplexed connection (in-flight frames fail)
// and all pooled connections; in-flight unframed queries finish on their
// own connections.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	var first error
	for _, cc := range c.idle {
		if err := cc.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.idle = nil
	c.mu.Unlock()
	c.muxMu.Lock()
	m := c.mux
	c.mux = nil
	c.muxMu.Unlock()
	if m != nil {
		m.fail(errors.New("remote: client closed"))
	}
	return first
}

func (c *Client) acquire(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *Client) release(cc *clientConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < maxIdleConns {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.conn.Close()
}

// roundTrip sends one request and reads its response, bounded by ctx: as
// a frame on the shared multiplexed connection when the server accepted
// framing, in lockstep on a pooled connection otherwise. A request that
// failed before its response started arriving is retried once on a fresh
// connection (the server may have restarted); a request cancelled or
// timed out by ctx is not retried and surfaces ctx's error.
func (c *Client) roundTrip(ctx context.Context, req Request) (Response, error) {
	// The transport deadline is the earlier of the client's per-round-trip
	// timeout and the context's own deadline; the remaining budget also
	// travels in the request so the server gives up evaluating in step
	// with the client giving up waiting.
	deadline := time.Now().Add(c.timeout)
	if cd, ok := ctx.Deadline(); ok {
		if cd.Before(deadline) {
			deadline = cd
		}
		remaining := time.Until(cd)
		if remaining <= 0 {
			// The deadline already passed (ctx.Err() may still read nil in
			// the instant before the context notices). Shipping the request
			// with no TimeoutMillis would let the server evaluate unbounded
			// work the client will never wait for — fail fast instead.
			return Response{}, context.DeadlineExceeded
		}
		req.TimeoutMillis = int64(remaining / time.Millisecond)
		if req.TimeoutMillis == 0 {
			req.TimeoutMillis = 1
		}
	}
	if c.proto.Load() >= ProtoFramed {
		return c.muxRoundTrip(ctx, req, deadline)
	}
	return c.lockstepRoundTrip(ctx, req, deadline)
}

// muxRoundTrip performs one exchange on the shared framed connection.
// Waiting is per request — a timeout abandons this frame's pending slot
// and leaves the connection (and everyone else's in-flight frames)
// untouched; only a transport failure kills the connection, which is
// then redialed once.
func (c *Client) muxRoundTrip(ctx context.Context, req Request, deadline time.Time) (Response, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		m, err := c.muxGet(ctx)
		if err != nil {
			return Response{}, err
		}
		if m == nil {
			// The server stopped speaking framed (e.g. restarted with
			// framing disabled); negotiate already flipped the protocol.
			return c.lockstepRoundTrip(ctx, req, deadline)
		}
		id, ch, err := m.send(req)
		if err != nil {
			c.muxDrop(m)
			if cerr := ctx.Err(); cerr != nil {
				return Response{}, cerr
			}
			if attempt >= 1 {
				return Response{}, fmt.Errorf("remote: %s: %w", c.addr, err)
			}
			continue
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case resp, ok := <-ch:
			timer.Stop()
			if ok {
				return resp, nil
			}
			// The connection died with this frame in flight.
			c.muxDrop(m)
			if cerr := ctx.Err(); cerr != nil {
				return Response{}, cerr
			}
			if attempt >= 1 {
				return Response{}, fmt.Errorf("remote: %s: %w", c.addr, m.failure())
			}
		case <-timer.C:
			m.abandon(id)
			return Response{}, fmt.Errorf("remote: %s: %w", c.addr, context.DeadlineExceeded)
		case <-ctx.Done():
			timer.Stop()
			m.abandon(id)
			return Response{}, ctx.Err()
		}
	}
}

// muxGet returns the live multiplexed connection, redialing and
// re-negotiating if the previous one died. A nil muxConn with nil error
// means the server downgraded the client to the unframed protocol.
func (c *Client) muxGet(ctx context.Context) (*muxConn, error) {
	c.muxMu.Lock()
	if c.closed {
		c.muxMu.Unlock()
		return nil, fmt.Errorf("remote: %s: client closed", c.addr)
	}
	if m := c.mux; m != nil && !m.isDead() {
		c.muxMu.Unlock()
		return m, nil
	}
	c.muxMu.Unlock()
	resp, err := c.negotiate(ctx)
	if err != nil {
		return nil, err
	}
	if err := respError(c.name, resp); err != nil {
		return nil, err
	}
	if c.proto.Load() < ProtoFramed {
		return nil, nil
	}
	c.muxMu.Lock()
	m := c.mux
	c.muxMu.Unlock()
	if m == nil {
		return nil, fmt.Errorf("remote: %s: client closed", c.addr)
	}
	return m, nil
}

// muxDrop kills m and detaches it if it is still the client's current
// connection, so the next request dials afresh.
func (c *Client) muxDrop(m *muxConn) {
	m.fail(errors.New("remote: connection failed"))
	c.muxMu.Lock()
	if c.mux == m {
		c.mux = nil
	}
	c.muxMu.Unlock()
}

// lockstepRoundTrip is the original protocol: one request then one
// response on a pooled connection, retried once on a broken conn.
func (c *Client) lockstepRoundTrip(ctx context.Context, req Request, deadline time.Time) (Response, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		cc, err := c.acquire(ctx)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return Response{}, cerr
			}
			return Response{}, err
		}
		resp, err := cc.exchange(ctx, req, deadline)
		if err == nil {
			c.release(cc)
			return resp, nil
		}
		cc.conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return Response{}, cerr
		}
		if attempt >= 1 {
			return Response{}, fmt.Errorf("remote: %s: %w", c.addr, err)
		}
		// Drop every pooled connection: if ours broke, the rest are
		// probably stale too.
		c.mu.Lock()
		for _, stale := range c.idle {
			stale.conn.Close()
		}
		c.idle = nil
		c.mu.Unlock()
	}
}

// exchange performs one request/response on the connection under the
// deadline, unblocking early if ctx is cancelled mid-flight: a watcher
// goroutine forces the connection's deadline into the past, which makes
// the pending read or write fail immediately. The caller must treat any
// error as fatal to the connection (the encoder/decoder streams are not
// resumable after a deadline pop).
func (cc *clientConn) exchange(ctx context.Context, req Request, deadline time.Time) (Response, error) {
	cc.conn.SetDeadline(deadline)
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				cc.conn.SetDeadline(time.Unix(1, 0))
			case <-watchDone:
			}
		}()
	}
	var resp Response
	err := cc.enc.Encode(req)
	if err == nil {
		err = cc.dec.Decode(&resp)
	}
	if err != nil {
		return Response{}, err
	}
	cc.conn.SetDeadline(time.Time{})
	return resp, nil
}
