package remote

import (
	"context"
	"testing"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
)

// TestMetricsScrape drives traffic through a served wrapper and checks
// that a scrape reports it: per-kind request counters, matching latency
// histograms, and an error count.
func TestMetricsScrape(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.Metrics = metrics.NewRegistry() // isolate from the process default
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	for i := 0; i < 3; i++ {
		if _, err := client.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.QueryBatch([]*msl.Rule{q, q}); err != nil {
		t.Fatal(err)
	}
	// One malformed query to exercise the error counter.
	resp, err := client.roundTrip(context.Background(), Request{Kind: reqQuery, Query: "not msl"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("malformed query did not error")
	}

	snap, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("remote.requests.hello"); got != 1 {
		t.Errorf("hello count = %d, want 1", got)
	}
	if got := snap.Counter("remote.requests.query"); got < 3 {
		t.Errorf("query count = %d, want >= 3", got)
	}
	if got := snap.Counter("remote.requests.batch"); got != 1 {
		t.Errorf("batch count = %d, want 1", got)
	}
	if got := snap.Counter("remote.errors"); got < 1 {
		t.Errorf("error count = %d, want >= 1", got)
	}
	// Latency histograms must agree with the request counters.
	if h := snap.Histogram("remote.latency.query"); h.Count != snap.Counter("remote.requests.query") {
		t.Errorf("query latency observations = %d, counter = %d",
			h.Count, snap.Counter("remote.requests.query"))
	}
	// The scrape itself is recorded after its snapshot: a second scrape
	// sees the first.
	snap2, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := snap2.Counter("remote.requests.metrics"); got != 1 {
		t.Errorf("second scrape reports %d prior metrics requests, want 1", got)
	}
}

// TestMetricsUnknownKindBucketed: garbage request kinds land in one
// "unknown" bucket instead of growing the metric namespace unboundedly.
func TestMetricsUnknownKindBucketed(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.Metrics = metrics.NewRegistry()
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for _, kind := range []string{"bogus", "evil", "bogus"} {
		resp, err := client.roundTrip(context.Background(), Request{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Err == "" {
			t.Fatalf("kind %q did not error", kind)
		}
	}
	snap, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("remote.requests.unknown"); got != 3 {
		t.Errorf("unknown count = %d, want 3", got)
	}
	if got := snap.Counter("remote.requests.bogus"); got != 0 {
		t.Errorf("per-garbage-kind counter leaked: %d", got)
	}
}
