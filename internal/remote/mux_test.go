package remote

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/wrapper"
)

// slowSource delays queries whose pattern binds name to a value starting
// with "Slow", so one in-flight request can straddle many fast ones.
type slowSource struct {
	inner wrapper.Source
	delay time.Duration
}

func (s *slowSource) Name() string                       { return s.inner.Name() }
func (s *slowSource) Capabilities() wrapper.Capabilities { return s.inner.Capabilities() }
func (s *slowSource) Query(q *msl.Rule) ([]*oem.Object, error) {
	return s.QueryContext(context.Background(), q)
}

func (s *slowSource) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if pc, ok := q.Tail[0].(*msl.PatternConjunct); ok {
		if key, bound := wrapper.ShardKey(pc.Pattern, "name"); bound && strings.HasPrefix(key, "Slow") {
			select {
			case <-time.After(s.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return wrapper.QueryContext(ctx, s.inner, q)
}

func slowWhois(t *testing.T, delay time.Duration) wrapper.Source {
	t.Helper()
	src, err := oemstore.FromText("whois", `
	    <person, set, {<name, 'Joe Chung'>, <dept, 'CS'>}>
	    <person, set, {<name, 'Slow Poke'>, <dept, 'CS'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	return &slowSource{inner: src, delay: delay}
}

func TestFramedNegotiation(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Proto() != ProtoFramed {
		t.Fatalf("negotiated proto %d, want framed (%d)", client.Proto(), ProtoFramed)
	}
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	got, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("framed query returned %d objects", len(got))
	}
}

func TestUnframedFallback(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.DisableFraming = true
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Proto() != ProtoUnframed {
		t.Fatalf("old server negotiated proto %d, want unframed (%d)", client.Proto(), ProtoUnframed)
	}
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	for i := 0; i < 3; i++ {
		got, err := client.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("lockstep query returned %d objects", len(got))
		}
	}
}

// TestFramesInterleave is the multiplexing evidence: one slow and many
// fast requests share one connection, and the frame log shows a response
// arriving after the response to a later-sent request.
func TestFramesInterleave(t *testing.T) {
	addr, _ := startServer(t, slowWhois(t, 150*time.Millisecond))
	client, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	log := client.EnableFrameLog(0)

	slow := msl.MustParseRule(`X :- X:<person {<name 'Slow Poke'>}>@whois.`)
	fast := msl.MustParseRule(`X :- X:<person {<name 'Joe Chung'>}>@whois.`)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := client.Query(slow); err != nil {
			errs <- fmt.Errorf("slow: %w", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the slow frame ship first
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Query(fast); err != nil {
				errs <- fmt.Errorf("fast: %w", err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !log.Interleaved() {
		t.Fatalf("no out-of-order responses observed; frames:\n%+v", log.Events())
	}
}

func TestMuxConcurrentRequests(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	client, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := client.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 2 {
					errs <- errors.New("wrong result size")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if client.Proto() != ProtoFramed {
		t.Fatal("concurrent load downgraded the connection")
	}
}

// TestMuxDeadlineAbandonsFrame: a caller's deadline expiring abandons its
// frame without killing the shared connection — the next request on the
// same client succeeds with no redial.
func TestMuxDeadlineAbandonsFrame(t *testing.T) {
	addr, _ := startServer(t, slowWhois(t, 400*time.Millisecond))
	client, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	slow := msl.MustParseRule(`X :- X:<person {<name 'Slow Poke'>}>@whois.`)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := client.QueryContext(ctx, slow); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	fast := msl.MustParseRule(`X :- X:<person {<name 'Joe Chung'>}>@whois.`)
	got, err := client.Query(fast)
	if err != nil {
		t.Fatalf("connection unusable after an abandoned frame: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("post-abandon query returned %d objects", len(got))
	}
	if client.Proto() != ProtoFramed {
		t.Fatal("abandoned frame downgraded the connection")
	}
}

// TestMuxCancelAbandonsFrame mirrors the deadline test for explicit
// cancellation.
func TestMuxCancelAbandonsFrame(t *testing.T) {
	addr, _ := startServer(t, slowWhois(t, 400*time.Millisecond))
	client, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	slow := msl.MustParseRule(`X :- X:<person {<name 'Slow Poke'>}>@whois.`)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := client.QueryContext(ctx, slow); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	fast := msl.MustParseRule(`X :- X:<person {<name 'Joe Chung'>}>@whois.`)
	if _, err := client.Query(fast); err != nil {
		t.Fatalf("connection unusable after a canceled frame: %v", err)
	}
}

// TestMuxRedialAfterServerRestart: the shared framed connection dies with
// the server; the client transparently renegotiates on the next request.
func TestMuxRedialAfterServerRestart(t *testing.T) {
	src := whoisSource(t)
	srv := NewServer(src)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Proto() != ProtoFramed {
		t.Fatal("initial dial not framed")
	}
	srv.Close()
	srv2 := NewServer(src)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	got, err := client.Query(q)
	if err != nil {
		t.Fatalf("redial failed: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("post-redial query returned %d objects", len(got))
	}
	if client.Proto() != ProtoFramed {
		t.Fatal("redial lost the framed protocol")
	}
}
