package remote

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/wrapper"
)

func startServer(t *testing.T, src wrapper.Source) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer(src)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func whoisSource(t *testing.T) wrapper.Source {
	t.Helper()
	src, err := oemstore.FromText("whois", `
	    <person, set, {<name, 'Joe Chung'>, <dept, 'CS'>, <relation, 'employee'>, <e_mail, 'chung@cs'>}>
	    <person, set, {<name, 'Nick Naive'>, <dept, 'CS'>, <relation, 'student'>, <year, 3>}>`)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestWireRoundTrip(t *testing.T) {
	objs := oem.MustParse(`
	<&p1, person, set, {&n1, &y1, &f1, &b1, &x1, &e1}>
	  <&n1, name, string, 'Joe'>
	  <&y1, year, integer, 3>
	  <&f1, gpa, real, 3.5>
	  <&b1, active, boolean, true>
	  <&x1, blob, bytes, 0xdead>
	  <&e1, empty, set, {}>
	;`)
	w := ToWire(objs[0])
	back, err := FromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if !back.StructuralEqual(objs[0]) {
		t.Fatalf("wire round trip changed the object:\n%s", oem.Format(back))
	}
	if back.OID != objs[0].OID {
		t.Fatal("oid lost on the wire")
	}
	if _, err := FromWire(WireObject{Label: "x", Kind: 99}); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestPropWireRoundTrip(t *testing.T) {
	f := func(label string, n int64, s string) bool {
		if label == "" {
			label = "x"
		}
		obj := oem.NewSet("&a", label, oem.New("&b", "n", n), oem.New("&c", "s", s))
		back, err := FromWire(ToWire(obj))
		return err == nil && back.StructuralEqual(obj)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHandshakeAndQuery(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Name() != "whois" {
		t.Fatalf("name = %q", client.Name())
	}
	if !client.Capabilities().Wildcards {
		t.Fatal("capabilities not transferred")
	}
	q := msl.MustParseRule(`<out N> :- <person {<name N> <dept 'CS'>}>@whois.`)
	got, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("remote query returned %d objects", len(got))
	}
}

func TestUnsupportedErrorCrossesWire(t *testing.T) {
	limited := &wrapper.Limited{Inner: whoisSource(t), Caps: wrapper.Capabilities{MultiPattern: true}}
	addr, _ := startServer(t, limited)
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Capabilities().ValueConditions {
		t.Fatal("limited capabilities not transferred")
	}
	q := msl.MustParseRule(`<out N> :- <person {<name N> <dept 'CS'>}>@whois.`)
	_, err = client.Query(q)
	var ue *wrapper.UnsupportedError
	if !errors.As(err, &ue) || ue.Feature != "value conditions" {
		t.Fatalf("expected typed UnsupportedError, got %v", err)
	}
}

func TestQueryParseErrorReported(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Force a malformed query across the wire.
	resp, err := client.roundTrip(context.Background(), Request{Kind: reqQuery, Query: "<<<"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("malformed query not rejected")
	}
	if resp.Unsupported != "" {
		t.Fatal("parse error misclassified as capability error")
	}
}

func TestUnknownRequestKind(t *testing.T) {
	srv := NewServer(whoisSource(t))
	resp := srv.dispatch(Request{Kind: "bogus"})
	if !strings.Contains(resp.Err, "unknown request") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for j := 0; j < 20; j++ {
				got, err := client.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 2 {
					errs <- errors.New("wrong result size")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRedialAfterServerRestart(t *testing.T) {
	src := whoisSource(t)
	srv := NewServer(src)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Kill the server (dropping the live connection) and restart on the
	// same address.
	srv.Close()
	srv2 := NewServer(src)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	got, err := client.Query(q)
	if err != nil {
		t.Fatalf("redial failed: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("post-redial query returned %d objects", len(got))
	}
}

func TestCountLabelOverWire(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if n, ok := client.CountLabel("person"); !ok || n != 2 {
		t.Fatalf("CountLabel(person) = %d, %v", n, ok)
	}
	if n, ok := client.CountLabel("ghost"); !ok || n != 0 {
		t.Fatalf("CountLabel(ghost) = %d, %v", n, ok)
	}
}

// uncountable wraps a source hiding any Counter implementation.
type uncountable struct{ wrapper.Source }

func TestCountLabelUnsupported(t *testing.T) {
	addr, _ := startServer(t, &uncountable{whoisSource(t)})
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, ok := client.CountLabel("person"); ok {
		t.Fatal("counting should be unsupported")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
}

func TestQueryBatchOverWire(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	qs := []*msl.Rule{
		msl.MustParseRule(`<out N> :- <person {<name N> <relation 'employee'>}>@whois.`),
		msl.MustParseRule(`<out N> :- <person {<name N> <relation 'student'>}>@whois.`),
		msl.MustParseRule(`<out N> :- <person {<name N> <relation 'nobody'>}>@whois.`),
	}
	results, err := client.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("batch returned %d result sets, want 3", len(results))
	}
	// Result sets come back in request order, empty sets included.
	for i, want := range []string{"Joe Chung", "Nick Naive", ""} {
		if want == "" {
			if len(results[i]) != 0 {
				t.Fatalf("result set %d has %d objects, want 0", i, len(results[i]))
			}
			continue
		}
		if len(results[i]) != 1 {
			t.Fatalf("result set %d has %d objects, want 1", i, len(results[i]))
		}
		if v, _ := results[i][0].AtomString(); v != want {
			t.Fatalf("result set %d = %q, want %q", i, v, want)
		}
	}
}

func TestQueryBatchParseErrorOverWire(t *testing.T) {
	addr, _ := startServer(t, whoisSource(t))
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// A server-side failure on any query in the batch fails the exchange.
	resp, err := client.roundTrip(context.Background(), Request{Kind: reqBatch, Queries: []string{"not msl"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("malformed batched query accepted")
	}
}
