// Package remote runs wrappers behind a TCP protocol, giving MedMaker the
// distributed deployment of the TSIMMIS architecture (Figure 1.1): the
// mediator process talks to wrapper processes over the network, shipping
// MSL queries one way and OEM objects the other.
//
// The protocol is a length-free gob stream per connection. It opens with
// an unframed handshake (a hello Request answered by name and
// capabilities) that also negotiates a protocol version: when both ends
// speak ProtoFramed the connection upgrades to multiplexed framing —
// every subsequent message carries a frame ID, the client pipelines
// concurrent requests on the one shared connection, and the server
// answers them out of order as each finishes. Old peers on either side
// simply never offer (or never accept) the upgrade and the connection
// stays in the original one-request-at-a-time form. Servers handle each
// connection in its own goroutine; a Client is itself a wrapper.Source,
// so remote and in-process sources are interchangeable to the mediator.
package remote

import (
	"fmt"

	"medmaker/internal/metrics"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// request kinds.
const (
	reqHello   = "hello"   // handshake: fetch name and capabilities
	reqQuery   = "query"   // evaluate the MSL text in Query
	reqCount   = "count"   // count top-level objects with Label
	reqBatch   = "batch"   // evaluate every MSL text in Queries, one exchange
	reqMetrics = "metrics" // scrape the server's metrics registry
)

// Protocol versions negotiated in the hello exchange. The hello itself
// always travels unframed, so any client can talk to any server; what is
// negotiated is the rest of the connection's life.
const (
	// ProtoUnframed is the original protocol: one request, then one
	// response, in lockstep per connection.
	ProtoUnframed = 1
	// ProtoFramed multiplexes: after the hello, every message is a frame
	// carrying an ID, requests may be pipelined, and responses return in
	// completion order — one shared connection serves concurrent callers.
	ProtoFramed = 2
)

// Request is one client→server message.
type Request struct {
	Kind    string
	Query   string   // MSL text for reqQuery
	Label   string   // label for reqCount
	Queries []string // MSL texts for reqBatch
	// TimeoutMillis, when positive, is the client's remaining deadline
	// budget for this request; the server bounds its own evaluation by it
	// so work whose answer the client will discard is abandoned early.
	// Zero means no client deadline. (Gob tolerates the field's absence,
	// so old clients and servers interoperate with new ones.)
	TimeoutMillis int64
	// Proto, on a hello, is the newest protocol version the client
	// speaks. Gob omits the zero field and ignores unknown fields, so an
	// old server never sees it and an old client never sends it — both
	// land on ProtoUnframed.
	Proto int
}

// reqFrame is one client→server message after a framed upgrade: the
// request, tagged with a connection-unique ID its response will echo.
type reqFrame struct {
	ID  uint64
	Req Request
}

// respFrame is one server→client message after a framed upgrade.
// Responses carry their request's ID and may arrive in any order.
type respFrame struct {
	ID   uint64
	Resp Response
}

// Response is one server→client message.
type Response struct {
	// Name and Caps answer a hello.
	Name string
	Caps wrapper.Capabilities
	// Objects answer a query.
	Objects []WireObject
	// Batches answer a batch request, one result set per query, in
	// request order.
	Batches [][]WireObject
	// Count and CountOK answer a count request (CountOK is false when
	// the remote source cannot count cheaply).
	Count   int
	CountOK bool
	// Metrics answers a metrics request with a snapshot of the server
	// process's registry. A pointer so old servers — whose responses omit
	// the field entirely — are distinguishable from an empty registry.
	Metrics *metrics.Snapshot
	// Err is a non-empty error message; Unsupported carries the feature
	// name when the error was a capability rejection, so the client can
	// reconstitute a typed *wrapper.UnsupportedError.
	Err         string
	Unsupported string
	// Busy marks a refusal by a server at its connection bound (see
	// Server.MaxConns); the client surfaces it as ErrServerBusy so callers
	// can back off or shed instead of treating overload as failure.
	Busy bool
	// CtxErr marks an Err caused by the request's own deadline budget
	// ("deadline") or cancellation ("canceled"), so the client surfaces
	// the matching context error instead of an opaque string — the same
	// error the client's own deadline would have produced had it popped
	// first.
	CtxErr string
	// Proto, on a hello response, is the protocol version the server
	// selected for the rest of the connection: ProtoFramed accepts the
	// client's offer to multiplex, absent (0, from old servers or a
	// server with framing disabled) keeps the connection unframed.
	Proto int
}

// WireObject is the gob-encodable form of an OEM object. Interface-typed
// values do not gob-encode without global registration, so the value is
// flattened into kind-tagged fields.
type WireObject struct {
	OID   string
	Label string
	Kind  int
	Str   string
	Int   int64
	Float float64
	Bool  bool
	Bytes []byte
	Subs  []WireObject
}

// ToWire converts an OEM object tree.
func ToWire(o *oem.Object) WireObject {
	w := WireObject{OID: string(o.OID), Label: o.Label, Kind: int(o.Kind())}
	switch v := o.Value.(type) {
	case oem.String:
		w.Str = string(v)
	case oem.Int:
		w.Int = int64(v)
	case oem.Float:
		w.Float = float64(v)
	case oem.Bool:
		w.Bool = bool(v)
	case oem.Bytes:
		w.Bytes = []byte(v)
	case oem.Set:
		w.Subs = make([]WireObject, len(v))
		for i, sub := range v {
			w.Subs[i] = ToWire(sub)
		}
	case nil:
	}
	return w
}

// FromWire converts back to an OEM object.
func FromWire(w WireObject) (*oem.Object, error) {
	o := &oem.Object{OID: oem.OID(w.OID), Label: w.Label}
	switch oem.Kind(w.Kind) {
	case oem.KindString:
		o.Value = oem.String(w.Str)
	case oem.KindInt:
		o.Value = oem.Int(w.Int)
	case oem.KindFloat:
		o.Value = oem.Float(w.Float)
	case oem.KindBool:
		o.Value = oem.Bool(w.Bool)
	case oem.KindBytes:
		o.Value = oem.Bytes(w.Bytes)
	case oem.KindSet:
		subs := make(oem.Set, len(w.Subs))
		for i, sw := range w.Subs {
			sub, err := FromWire(sw)
			if err != nil {
				return nil, err
			}
			subs[i] = sub
		}
		o.Value = subs
	default:
		return nil, fmt.Errorf("remote: unknown value kind %d for %q", w.Kind, w.Label)
	}
	return o, nil
}
