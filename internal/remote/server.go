package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"medmaker/internal/msl"
	"medmaker/internal/wrapper"
)

// Server exposes a wrapper.Source over TCP.
type Server struct {
	source wrapper.Source

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps source; call Serve or Start to accept connections.
func NewServer(source wrapper.Source) *Server {
	return &Server{source: source, conns: make(map[net.Conn]bool)}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remote: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // disconnected or malformed stream
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	switch req.Kind {
	case reqHello:
		return Response{Name: s.source.Name(), Caps: s.source.Capabilities()}
	case reqCount:
		if counter, ok := s.source.(wrapper.Counter); ok {
			n, ok := counter.CountLabel(req.Label)
			return Response{Count: n, CountOK: ok}
		}
		return Response{CountOK: false}
	case reqQuery:
		rule, err := msl.ParseQuery(req.Query)
		if err != nil {
			return Response{Err: err.Error()}
		}
		objs, err := s.source.Query(rule)
		if err != nil {
			resp := Response{Err: err.Error()}
			var ue *wrapper.UnsupportedError
			if errors.As(err, &ue) {
				resp.Unsupported = ue.Feature
			}
			return resp
		}
		out := make([]WireObject, len(objs))
		for i, o := range objs {
			out[i] = ToWire(o)
		}
		return Response{Objects: out}
	case reqBatch:
		// One exchange carrying several queries — the server side of
		// wrapper.BatchQuerier. The inner source answers them in one call
		// when it can batch itself (a chain of remote hops collapses into
		// one exchange per hop), otherwise query by query.
		rules := make([]*msl.Rule, len(req.Queries))
		for i, text := range req.Queries {
			rule, err := msl.ParseQuery(text)
			if err != nil {
				return Response{Err: err.Error()}
			}
			rules[i] = rule
		}
		results, err := wrapper.QueryBatch(s.source, rules)
		if err != nil {
			resp := Response{Err: err.Error()}
			var ue *wrapper.UnsupportedError
			if errors.As(err, &ue) {
				resp.Unsupported = ue.Feature
			}
			return resp
		}
		batches := make([][]WireObject, len(results))
		for i, objs := range results {
			batches[i] = make([]WireObject, len(objs))
			for j, o := range objs {
				batches[i][j] = ToWire(o)
			}
		}
		return Response{Batches: batches}
	}
	return Response{Err: fmt.Sprintf("remote: unknown request kind %q", req.Kind)}
}

// ServeConn handles a single pre-established connection until it closes —
// useful for in-memory pipes in tests.
func (s *Server) ServeConn(conn io.ReadWriter) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		if err := enc.Encode(s.dispatch(req)); err != nil {
			return
		}
	}
}
