package remote

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/wrapper"
)

// Server exposes a wrapper.Source over TCP.
type Server struct {
	source wrapper.Source

	// IdleTimeout bounds how long an accepted connection may sit between
	// requests before the server closes it (0 = DefaultIdleTimeout; <0 =
	// no bound). Clients pool connections and redial transparently, so
	// reclaiming an idle one is invisible to them.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response (0 = DefaultWriteTimeout;
	// <0 = no bound). It protects handler goroutines from a client that
	// stopped reading.
	WriteTimeout time.Duration
	// Metrics is the registry this server records request traffic into and
	// serves to metrics requests. Nil means the process-wide default — the
	// same registry the engine and the source's own cache record into, so
	// one scrape sees the whole process.
	Metrics *metrics.Registry
	// MaxConns bounds concurrently served connections. A connection beyond
	// the bound is not left to stall in the OS accept backlog: it is
	// accepted, told "server busy" in a typed response (Response.Busy, which
	// clients surface as ErrServerBusy), and closed — so an overloaded
	// server degrades into fast, explicit refusals instead of invisible
	// queueing. 0 means DefaultMaxConns; negative means unlimited. Set it
	// before Start.
	MaxConns int
	// DisableFraming refuses the framed-protocol upgrade: hello responses
	// omit the accepted version and every connection stays in the original
	// one-request-at-a-time protocol. It exists to exercise (and to force,
	// should framing ever misbehave in a deployment) the compatibility
	// path new clients take against old servers. Set it before Start.
	DisableFraming bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
	closed   bool
}

// Default connection deadlines (see Server.IdleTimeout, WriteTimeout).
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// DefaultMaxConns is the connection bound used when Server.MaxConns is 0.
const DefaultMaxConns = 256

// busyMessage travels in the refusal response's Err field so clients that
// predate the Busy flag still see a meaningful error.
const busyMessage = "server busy"

// NewServer wraps source; call Serve or Start to accept connections.
func NewServer(source wrapper.Source) *Server {
	return &Server{source: source, conns: make(map[net.Conn]bool)}
}

// effective deadline helpers: 0 means default, negative means none.
func pickTimeout(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remote: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	max := s.MaxConns
	if max == 0 {
		max = DefaultMaxConns
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if max > 0 && len(s.conns) >= max {
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.refuse(conn)
			}()
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// refuse answers an over-capacity connection with a typed busy response
// and closes it. Writing before reading is safe: the refusal is the first
// and only message on the stream, and the client's pending request sits in
// the TCP buffers unread.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	s.registry().Counter("remote.busy").Inc()
	if write := pickTimeout(s.WriteTimeout, DefaultWriteTimeout); write > 0 {
		conn.SetWriteDeadline(time.Now().Add(write))
	}
	gob.NewEncoder(conn).Encode(Response{Err: busyMessage, Busy: true})
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	idle := pickTimeout(s.IdleTimeout, DefaultIdleTimeout)
	write := pickTimeout(s.WriteTimeout, DefaultWriteTimeout)
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		// The read deadline doubles as the idle bound: a connection that
		// sends nothing for IdleTimeout is reclaimed. It is cleared while
		// the request evaluates (evaluation time is the client's budget,
		// carried in the request, not the transport's).
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // disconnected, idle-expired, or malformed stream
		}
		conn.SetReadDeadline(time.Time{})
		resp := s.dispatch(req)
		if s.upgrades(req) {
			resp.Proto = ProtoFramed
		}
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		conn.SetWriteDeadline(time.Time{})
		if resp.Proto >= ProtoFramed {
			s.handleFramed(conn, dec, enc)
			return
		}
	}
}

// upgrades reports whether req is a hello offering a protocol this
// server accepts an upgrade to.
func (s *Server) upgrades(req Request) bool {
	return req.Kind == reqHello && req.Proto >= ProtoFramed && !s.DisableFraming
}

// maxInflightFrames bounds the evaluation goroutines one framed
// connection may hold at once. Reading stops while the connection is at
// the bound, so a client that pipelines faster than the source answers
// gets transport backpressure instead of an unbounded goroutine pile.
const maxInflightFrames = 64

// handleFramed serves a connection after the framed upgrade: a read loop
// decodes request frames and hands each to its own goroutine, responses
// are written under a mutex in completion order (out-of-order relative
// to the requests), and the ID ties each response to its request. The
// gob decoder cannot resume after a read-deadline pop, so the idle bound
// is enforced by a watchdog that closes a connection with no traffic and
// no evaluating requests instead of by deadlines on the blocked read.
func (s *Server) handleFramed(conn io.ReadWriter, dec *gob.Decoder, enc *gob.Encoder) {
	write := pickTimeout(s.WriteTimeout, DefaultWriteTimeout)
	reg := s.registry()
	wd, hasWriteDeadline := conn.(interface{ SetWriteDeadline(time.Time) error })
	closer, hasClose := conn.(interface{ Close() error })

	var (
		writeMu  sync.Mutex
		inflight atomic.Int64
		lastNano atomic.Int64
	)
	lastNano.Store(time.Now().UnixNano())
	if idle := pickTimeout(s.IdleTimeout, DefaultIdleTimeout); idle > 0 && hasClose {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(idle / 4)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					quiet := time.Since(time.Unix(0, lastNano.Load()))
					if inflight.Load() == 0 && quiet >= idle {
						closer.Close() // pops the blocked frame read
						return
					}
				}
			}
		}()
	}

	sem := make(chan struct{}, maxInflightFrames)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var f reqFrame
		if err := dec.Decode(&f); err != nil {
			return // disconnected, idle-reclaimed, or malformed stream
		}
		reg.Counter("remote.frames.recv").Inc()
		lastNano.Store(time.Now().UnixNano())
		inflight.Add(1)
		sem <- struct{}{}
		wg.Add(1)
		go func(f reqFrame) {
			defer wg.Done()
			defer func() { <-sem }()
			resp := s.dispatch(f.Req)
			if s.upgrades(f.Req) {
				resp.Proto = ProtoFramed // hello mid-stream: already framed
			}
			writeMu.Lock()
			if write > 0 && hasWriteDeadline {
				wd.SetWriteDeadline(time.Now().Add(write))
			}
			err := enc.Encode(respFrame{ID: f.ID, Resp: resp})
			if err == nil && write > 0 && hasWriteDeadline {
				wd.SetWriteDeadline(time.Time{})
			}
			writeMu.Unlock()
			reg.Counter("remote.frames.sent").Inc()
			lastNano.Store(time.Now().UnixNano())
			inflight.Add(-1)
			if err != nil && hasClose {
				closer.Close() // a broken write ends the whole connection
			}
		}(f)
	}
}

// ctxErrKind classifies an evaluation error for Response.CtxErr.
func ctxErrKind(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return ""
}

// reqContext derives the evaluation context for one request from the
// deadline budget the client shipped with it.
func reqContext(req Request) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		return context.WithTimeout(context.Background(),
			time.Duration(req.TimeoutMillis)*time.Millisecond)
	}
	return context.Background(), func() {}
}

// registry resolves the server's metrics destination.
func (s *Server) registry() *metrics.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return metrics.Default()
}

// dispatch evaluates one request, recording per-kind traffic and latency
// so a scrape of this server reports what it has been serving. Unknown
// kinds share one bucket — the name space stays bounded whatever clients
// send.
func (s *Server) dispatch(req Request) Response {
	reg := s.registry()
	kind := req.Kind
	switch kind {
	case reqHello, reqQuery, reqCount, reqBatch, reqMetrics:
	default:
		kind = "unknown"
	}
	start := time.Now()
	resp := s.dispatchKind(req)
	reg.Counter("remote.requests." + kind).Inc()
	reg.Histogram("remote.latency." + kind).Observe(time.Since(start))
	if resp.Err != "" {
		reg.Counter("remote.errors").Inc()
	}
	return resp
}

func (s *Server) dispatchKind(req Request) Response {
	switch req.Kind {
	case reqMetrics:
		// The snapshot precedes this request's own accounting (dispatch
		// records after evaluating), so a scrape reports the traffic
		// strictly before it.
		snap := s.registry().Snapshot()
		return Response{Metrics: &snap}
	case reqHello:
		return Response{Name: s.source.Name(), Caps: s.source.Capabilities()}
	case reqCount:
		if counter, ok := s.source.(wrapper.Counter); ok {
			n, ok := counter.CountLabel(req.Label)
			return Response{Count: n, CountOK: ok}
		}
		return Response{CountOK: false}
	case reqQuery:
		rule, err := msl.ParseQuery(req.Query)
		if err != nil {
			return Response{Err: err.Error()}
		}
		ctx, cancel := reqContext(req)
		objs, err := wrapper.QueryContext(ctx, s.source, rule)
		cancel()
		if err != nil {
			resp := Response{Err: err.Error(), CtxErr: ctxErrKind(err)}
			var ue *wrapper.UnsupportedError
			if errors.As(err, &ue) {
				resp.Unsupported = ue.Feature
			}
			return resp
		}
		out := make([]WireObject, len(objs))
		for i, o := range objs {
			out[i] = ToWire(o)
		}
		return Response{Objects: out}
	case reqBatch:
		// One exchange carrying several queries — the server side of
		// wrapper.BatchQuerier. The inner source answers them in one call
		// when it can batch itself (a chain of remote hops collapses into
		// one exchange per hop), otherwise query by query.
		rules := make([]*msl.Rule, len(req.Queries))
		for i, text := range req.Queries {
			rule, err := msl.ParseQuery(text)
			if err != nil {
				return Response{Err: err.Error()}
			}
			rules[i] = rule
		}
		ctx, cancel := reqContext(req)
		results, err := wrapper.QueryBatchContext(ctx, s.source, rules)
		cancel()
		if err != nil {
			resp := Response{Err: err.Error(), CtxErr: ctxErrKind(err)}
			var ue *wrapper.UnsupportedError
			if errors.As(err, &ue) {
				resp.Unsupported = ue.Feature
			}
			return resp
		}
		batches := make([][]WireObject, len(results))
		for i, objs := range results {
			batches[i] = make([]WireObject, len(objs))
			for j, o := range objs {
				batches[i][j] = ToWire(o)
			}
		}
		return Response{Batches: batches}
	}
	return Response{Err: fmt.Sprintf("remote: unknown request kind %q", req.Kind)}
}

// ServeConn handles a single pre-established connection until it closes —
// useful for in-memory pipes in tests. It negotiates framing like an
// accepted connection does; deadlines and idle reclamation apply only
// when conn supports them (a net.Conn does, an in-memory pipe may not).
func (s *Server) ServeConn(conn io.ReadWriter) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.dispatch(req)
		if s.upgrades(req) {
			resp.Proto = ProtoFramed
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if resp.Proto >= ProtoFramed {
			s.handleFramed(conn, dec, enc)
			return
		}
	}
}
