package remote

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// muxConn is the client side of one framed connection: writes are
// serialized under a mutex, a single reader goroutine dispatches
// response frames to their waiting callers by ID, and per-request
// deadlines are enforced by the callers' own timers — a slow response
// never costs a connection teardown, only its own caller's patience.
type muxConn struct {
	conn    net.Conn
	enc     *gob.Encoder
	timeout time.Duration // write deadline per frame
	log     *atomic.Pointer[FrameLog]

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan Response
	nextID  uint64
	dead    bool
	err     error
}

// newMuxConn starts the reader goroutine and returns the connection.
func newMuxConn(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder, timeout time.Duration, log *atomic.Pointer[FrameLog]) *muxConn {
	m := &muxConn{
		conn:    conn,
		enc:     enc,
		timeout: timeout,
		log:     log,
		pending: make(map[uint64]chan Response),
	}
	go m.readLoop(dec)
	return m
}

// send writes one request frame and returns the channel its response
// will arrive on. The channel is buffered and closed if the connection
// dies first, so receivers distinguish an answer (ok) from a transport
// death (!ok).
func (m *muxConn) send(req Request) (uint64, chan Response, error) {
	m.mu.Lock()
	if m.dead {
		err := m.err
		m.mu.Unlock()
		return 0, nil, err
	}
	m.nextID++
	id := m.nextID
	ch := make(chan Response, 1)
	m.pending[id] = ch
	m.mu.Unlock()

	m.writeMu.Lock()
	if m.timeout > 0 {
		m.conn.SetWriteDeadline(time.Now().Add(m.timeout))
	}
	err := m.enc.Encode(reqFrame{ID: id, Req: req})
	if err == nil && m.timeout > 0 {
		m.conn.SetWriteDeadline(time.Time{})
	}
	m.writeMu.Unlock()
	if err != nil {
		m.abandon(id)
		m.fail(err)
		return 0, nil, err
	}
	if l := m.log.Load(); l != nil {
		l.record("send", id)
	}
	return id, ch, nil
}

// abandon forgets a pending frame whose caller stopped waiting; the
// response, if it ever arrives, is dropped by the reader.
func (m *muxConn) abandon(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// readLoop dispatches response frames to their callers until the
// connection dies.
func (m *muxConn) readLoop(dec *gob.Decoder) {
	for {
		var f respFrame
		if err := dec.Decode(&f); err != nil {
			m.fail(err)
			return
		}
		if l := m.log.Load(); l != nil {
			l.record("recv", f.ID)
		}
		m.mu.Lock()
		ch := m.pending[f.ID]
		delete(m.pending, f.ID)
		m.mu.Unlock()
		if ch != nil {
			ch <- f.Resp // buffered: the reader never blocks on a caller
		}
	}
}

// fail marks the connection dead, closes the socket (popping the blocked
// reader), and closes every pending caller's channel so in-flight
// requests fail promptly instead of waiting out their deadlines.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	if err == nil {
		err = errors.New("remote: connection failed")
	}
	m.err = err
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// isDead reports whether the connection has failed.
func (m *muxConn) isDead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// failure returns the error that killed the connection.
func (m *muxConn) failure() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return errors.New("remote: connection failed")
}

// FrameEvent is one frame observed on the multiplexed connection, in
// wire order per direction.
type FrameEvent struct {
	// Seq is the global observation order across both directions.
	Seq uint64
	// Dir is "send" or "recv".
	Dir string
	// ID is the frame's request ID.
	ID uint64
}

// FrameLog is a bounded ring of the most recent frame events on a
// client's multiplexed connection. It exists as evidence: a log whose
// receive order differs from its send order shows responses genuinely
// interleaving on the one shared connection.
type FrameLog struct {
	mu   sync.Mutex
	next uint64
	buf  []FrameEvent
	size int
}

// EnableFrameLog starts recording up to size frame events (0 means 512)
// and returns the log. Recording applies to the current multiplexed
// connection and any future redials; it costs one mutex per frame, so
// leave it off outside measurements.
func (c *Client) EnableFrameLog(size int) *FrameLog {
	if size <= 0 {
		size = 512
	}
	l := &FrameLog{size: size}
	c.frameLog.Store(l)
	return l
}

func (l *FrameLog) record(dir string, id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := FrameEvent{Seq: l.next, Dir: dir, ID: id}
	l.next++
	if len(l.buf) < l.size {
		l.buf = append(l.buf, ev)
		return
	}
	copy(l.buf, l.buf[1:])
	l.buf[len(l.buf)-1] = ev
}

// Events returns the retained frame events, oldest first.
func (l *FrameLog) Events() []FrameEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]FrameEvent(nil), l.buf...)
}

// Interleaved reports whether the log shows out-of-order multiplexing:
// some response arrived after a response to a later-sent request, or a
// request was sent while an earlier one was still in flight and their
// answers crossed. Ordered lockstep traffic (send a, recv a, send b,
// recv b, …) reports false.
func (l *FrameLog) Interleaved() bool {
	evs := l.Events()
	lastRecv := uint64(0)
	for _, ev := range evs {
		if ev.Dir != "recv" {
			continue
		}
		if ev.ID < lastRecv {
			return true
		}
		lastRecv = ev.ID
	}
	return false
}
