package remote

import (
	"net"
	"testing"
	"time"
)

// TestServerReclaimsIdleConnection: a connection that sends nothing for
// IdleTimeout is closed by the server, not held forever.
func TestServerReclaimsIdleConnection(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.IdleTimeout = 50 * time.Millisecond
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send nothing. The server should close the connection once the idle
	// deadline passes, which surfaces here as EOF (or a reset) on read.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection still open after IdleTimeout; read returned data")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept the idle connection open for 2s despite a 50ms IdleTimeout")
	}
}

// TestServerIdleTimeoutDisabled: a negative IdleTimeout means no bound, so
// a silent connection stays open (checked over a short window).
func TestServerIdleTimeoutDisabled(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.IdleTimeout = -1
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("connection closed despite IdleTimeout < 0: read err = %v", err)
	}
}
