package remote

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// TestServerReclaimsIdleConnection: a connection that sends nothing for
// IdleTimeout is closed by the server, not held forever.
func TestServerReclaimsIdleConnection(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.IdleTimeout = 50 * time.Millisecond
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send nothing. The server should close the connection once the idle
	// deadline passes, which surfaces here as EOF (or a reset) on read.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection still open after IdleTimeout; read returned data")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept the idle connection open for 2s despite a 50ms IdleTimeout")
	}
}

// expiredCtx has a deadline in the past while Err() still reads nil —
// the window a real context passes through in the instant between its
// deadline passing and its timer firing.
type expiredCtx struct{ context.Context }

func (expiredCtx) Deadline() (time.Time, bool) { return time.Unix(0, 0), true }
func (expiredCtx) Done() <-chan struct{}       { return nil }
func (expiredCtx) Err() error                  { return nil }

// countingSource counts the queries that actually reach it.
type countingSource struct {
	wrapper.Source
	calls atomic.Int64
}

func (c *countingSource) Query(q *msl.Rule) ([]*oem.Object, error) {
	c.calls.Add(1)
	return c.Source.Query(q)
}

// TestClientExpiredDeadlineFailsFast: a request whose context deadline
// already passed must not be sent — before the fix it travelled with
// TimeoutMillis unset, so the server evaluated it with no bound at all
// for a client that had already given up.
func TestClientExpiredDeadlineFailsFast(t *testing.T) {
	src := &countingSource{Source: whoisSource(t)}
	addr, _ := startServer(t, src)
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	_, err = client.QueryContext(expiredCtx{context.Background()}, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline query returned %v, want context.DeadlineExceeded", err)
	}
	if n := src.calls.Load(); n != 0 {
		t.Fatalf("expired-deadline query reached the server (%d source queries)", n)
	}
}

// TestServerIdleTimeoutDisabled: a negative IdleTimeout means no bound, so
// a silent connection stays open (checked over a short window).
func TestServerIdleTimeoutDisabled(t *testing.T) {
	srv := NewServer(whoisSource(t))
	srv.IdleTimeout = -1
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("connection closed despite IdleTimeout < 0: read err = %v", err)
	}
}
