// Package extfn implements MedMaker's external predicates: predicates in
// MSL rule tails that are evaluated by calling registered functions rather
// than by pattern matching.
//
// A predicate such as decomp(N, LN, FN) is declared in the mediator
// specification with one or more implementations, each usable under a
// particular binding pattern (adornment):
//
//	decomp(bound, free, free) by name_to_lnfn.
//	decomp(free, bound, bound) by lnfn_to_name.
//
// Operationally, to check decomp('Joe Chung', 'Chung', 'Joe') the engine
// may call name_to_lnfn with the bound name and compare the outputs, or
// call lnfn_to_name in the other direction; the specification promises the
// result is the same either way. Having several directions gives the
// optimizer flexibility at execution time. Comparison predicates (lt, le,
// gt, ge, eq, ne) are built in and need no declaration.
package extfn

import (
	"fmt"
	"sort"
	"sync"

	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Func is one callable direction of an external predicate. It receives the
// values of the bound argument positions, in argument order, and returns
// zero or more output tuples, each supplying values for the free positions
// in order. Returning several tuples makes the predicate multivalued
// (e.g. a thesaurus lookup); returning none means the call fails for these
// inputs.
type Func func(bound []oem.Value) ([][]oem.Value, error)

// Registry maps function names — the names after "by" in declarations —
// to Go implementations. It is safe for concurrent use. NewRegistry
// preloads the standard library (see stdlib.go).
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func
}

// NewRegistry returns a registry preloaded with the standard function
// library.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]Func)}
	registerStdlib(r)
	return r
}

// Register makes fn available under the given name, replacing any previous
// registration.
func (r *Registry) Register(name string, fn Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Lookup returns the function registered under name.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.funcs[name]
	return fn, ok
}

// Names returns the registered function names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// impl is a resolved implementation: a declared adornment bound to a
// registered function.
type impl struct {
	adornment []msl.ArgMode
	fn        Func
	funcName  string
}

// Table resolves the external declarations of one specification against a
// registry, and evaluates predicate conjuncts. Build one per mediator.
type Table struct {
	byPred map[string][]impl
}

// NewTable resolves decls against reg. Every declared function must be
// registered; all declarations of one predicate must agree on arity.
func NewTable(reg *Registry, decls []*msl.ExternalDecl) (*Table, error) {
	t := &Table{byPred: make(map[string][]impl)}
	for _, d := range decls {
		fn, ok := reg.Lookup(d.Func)
		if !ok {
			return nil, fmt.Errorf("extfn: declaration %q references unregistered function %q", d.Pred, d.Func)
		}
		if prev := t.byPred[d.Pred]; len(prev) > 0 && len(prev[0].adornment) != len(d.Adornment) {
			return nil, fmt.Errorf("extfn: predicate %q declared with arities %d and %d",
				d.Pred, len(prev[0].adornment), len(d.Adornment))
		}
		t.byPred[d.Pred] = append(t.byPred[d.Pred], impl{
			adornment: d.Adornment,
			fn:        fn,
			funcName:  d.Func,
		})
	}
	return t, nil
}

// builtinComparisons are the always-available all-bound predicates.
var builtinComparisons = map[string]func(cmp int) bool{
	"lt": func(c int) bool { return c < 0 },
	"le": func(c int) bool { return c <= 0 },
	"gt": func(c int) bool { return c > 0 },
	"ge": func(c int) bool { return c >= 0 },
	"eq": func(c int) bool { return c == 0 },
	"ne": func(c int) bool { return c != 0 },
}

// structural builtins over set bindings: has(S, 'label') holds when the
// set bound to S contains a member with the label; lacks is its negation.
// They make irregularity queryable: "people without an e_mail" is
// <person {| R}>@src AND lacks(R, 'e_mail').
var builtinStructural = map[string]bool{"has": true, "lacks": true}

// IsBuiltin reports whether name is a built-in predicate (comparisons or
// the structural has/lacks).
func IsBuiltin(name string) bool {
	if _, ok := builtinComparisons[name]; ok {
		return ok
	}
	return builtinStructural[name]
}

// Knows reports whether the table can evaluate the named predicate
// (declared or built in).
func (t *Table) Knows(name string) bool {
	if IsBuiltin(name) {
		return true
	}
	_, ok := t.byPred[name]
	return ok
}

// CanEval reports whether some implementation of the conjunct's predicate
// is applicable when exactly the variables in bound are bound. The planner
// uses this to place predicate conjuncts as early as possible in the
// execution order.
func (t *Table) CanEval(p *msl.PredicateConjunct, bound map[string]bool) bool {
	if IsBuiltin(p.Name) {
		for _, a := range p.Args {
			if v, ok := a.(*msl.Var); ok && !bound[v.Name] {
				return false
			}
		}
		return true
	}
	for _, im := range t.byPred[p.Name] {
		if len(im.adornment) != len(p.Args) {
			continue
		}
		if adornmentFits(im.adornment, p.Args, bound) {
			return true
		}
	}
	return false
}

func adornmentFits(ad []msl.ArgMode, args []msl.Term, bound map[string]bool) bool {
	for i, mode := range ad {
		if mode != msl.ArgBound {
			continue
		}
		switch a := args[i].(type) {
		case *msl.Const:
		case *msl.Var:
			if !bound[a.Name] {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Eval evaluates the predicate conjunct under env, returning the extended
// environments. For a check (all positions effectively bound) the result
// is env itself or nothing; free positions produce one extension per
// output tuple. Implementations are tried in declaration order and the
// first applicable one is used.
func (t *Table) Eval(p *msl.PredicateConjunct, env match.Env) ([]match.Env, error) {
	if cmp, ok := builtinComparisons[p.Name]; ok {
		return evalComparison(p, cmp, env)
	}
	if builtinStructural[p.Name] {
		return evalStructural(p, env)
	}
	impls := t.byPred[p.Name]
	if len(impls) == 0 {
		return nil, fmt.Errorf("extfn: undeclared predicate %q", p.Name)
	}
	bound := boundSet(env)
	for _, im := range impls {
		if len(im.adornment) != len(p.Args) {
			return nil, fmt.Errorf("extfn: predicate %q called with %d arguments, declared with %d",
				p.Name, len(p.Args), len(im.adornment))
		}
		if !adornmentFits(im.adornment, p.Args, bound) {
			continue
		}
		return t.call(p, im, env)
	}
	return nil, fmt.Errorf("extfn: no implementation of %q is applicable with bindings for %v",
		p.Name, match.Env(env).Names())
}

func boundSet(env match.Env) map[string]bool {
	out := make(map[string]bool, len(env))
	for name := range env {
		out[name] = true
	}
	return out
}

func (t *Table) call(p *msl.PredicateConjunct, im impl, env match.Env) ([]match.Env, error) {
	var inputs []oem.Value
	for i, mode := range im.adornment {
		if mode != msl.ArgBound {
			continue
		}
		v, err := argValue(p.Args[i], env)
		if err != nil {
			return nil, fmt.Errorf("extfn: %s argument %d: %w", p.Name, i+1, err)
		}
		inputs = append(inputs, v)
	}
	tuples, err := im.fn(inputs)
	if err != nil {
		return nil, fmt.Errorf("extfn: %s (via %s): %w", p.Name, im.funcName, err)
	}
	var out []match.Env
	for _, tuple := range tuples {
		e := env
		ok := true
		ti := 0
		for i, mode := range im.adornment {
			if mode != msl.ArgFree {
				continue
			}
			if ti >= len(tuple) {
				return nil, fmt.Errorf("extfn: %s (via %s) returned %d outputs, adornment has more free positions",
					p.Name, im.funcName, len(tuple))
			}
			val := tuple[ti]
			ti++
			switch a := p.Args[i].(type) {
			case *msl.Var:
				e, ok = e.Extend(a.Name, match.BindVal(val))
			case *msl.Const:
				ok = a.Value.Equal(val)
			default:
				return nil, fmt.Errorf("extfn: %s argument %d has unsupported term %s", p.Name, i+1, p.Args[i])
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out, nil
}

func argValue(t msl.Term, env match.Env) (oem.Value, error) {
	switch a := t.(type) {
	case *msl.Const:
		return a.Value, nil
	case *msl.Var:
		b, ok := env.Lookup(a.Name)
		if !ok {
			return nil, fmt.Errorf("variable %s is unbound", a.Name)
		}
		v, ok := b.AsValue()
		if !ok {
			return nil, fmt.Errorf("variable %s is bound to a whole object, not a value", a.Name)
		}
		return v, nil
	}
	return nil, fmt.Errorf("unsupported argument term %s", t)
}

// evalStructural evaluates has(S, L)/lacks(S, L): S must be bound to a
// set of objects (typically a rest variable) and L to a string label.
func evalStructural(p *msl.PredicateConjunct, env match.Env) ([]match.Env, error) {
	if len(p.Args) != 2 {
		return nil, fmt.Errorf("extfn: %s takes 2 arguments, got %d", p.Name, len(p.Args))
	}
	sv, err := argValue(p.Args[0], env)
	if err != nil {
		return nil, fmt.Errorf("extfn: %s: %w", p.Name, err)
	}
	set, ok := sv.(oem.Set)
	if !ok {
		return nil, fmt.Errorf("extfn: %s: first argument must be a set (a rest variable), got %s", p.Name, sv.Kind())
	}
	lv, err := argValue(p.Args[1], env)
	if err != nil {
		return nil, fmt.Errorf("extfn: %s: %w", p.Name, err)
	}
	label, ok := lv.(oem.String)
	if !ok {
		return nil, fmt.Errorf("extfn: %s: second argument must be a label string, got %s", p.Name, lv)
	}
	found := set.First(string(label)) != nil
	if found == (p.Name == "has") {
		return []match.Env{env}, nil
	}
	return nil, nil
}

func evalComparison(p *msl.PredicateConjunct, pass func(int) bool, env match.Env) ([]match.Env, error) {
	if len(p.Args) != 2 {
		return nil, fmt.Errorf("extfn: %s takes 2 arguments, got %d", p.Name, len(p.Args))
	}
	a, err := argValue(p.Args[0], env)
	if err != nil {
		return nil, fmt.Errorf("extfn: %s: %w", p.Name, err)
	}
	b, err := argValue(p.Args[1], env)
	if err != nil {
		return nil, fmt.Errorf("extfn: %s: %w", p.Name, err)
	}
	cmp, comparable := oem.CompareAtoms(a, b)
	if !comparable {
		// Incomparable values: eq fails, ne holds, orderings fail — the
		// tolerant behaviour irregular sources need.
		if p.Name == "ne" && !a.Equal(b) {
			return []match.Env{env}, nil
		}
		return nil, nil
	}
	if pass(cmp) {
		return []match.Env{env}, nil
	}
	return nil, nil
}
