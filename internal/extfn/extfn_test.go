package extfn

import (
	"errors"
	"testing"

	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

const decompDecls = `
decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
decomp(bound, bound, bound) by check3.
`

// check3 adapts check_name_lnfn to the all-bound decomp direction.
func check3(bound []oem.Value) ([][]oem.Value, error) {
	return CheckNameLnFn(bound)
}

func newTable(t *testing.T) *Table {
	t.Helper()
	reg := NewRegistry()
	reg.Register("check3", check3)
	prog := msl.MustParseProgram(decompDecls)
	tbl, err := NewTable(reg, prog.Decls)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func pred(t *testing.T, src string) *msl.PredicateConjunct {
	t.Helper()
	r, err := msl.ParseRule("X :- X:<p>@s AND " + src + ".")
	if err != nil {
		t.Fatal(err)
	}
	return r.Tail[1].(*msl.PredicateConjunct)
}

func env(t *testing.T, pairs ...any) match.Env {
	t.Helper()
	var e match.Env
	for i := 0; i < len(pairs); i += 2 {
		var ok bool
		e, ok = e.Extend(pairs[i].(string), match.BindVal(oem.Atom(pairs[i+1])))
		if !ok {
			t.Fatal("bad test env")
		}
	}
	return e
}

// TestDecompForward reproduces the paper's step 2: calling name_to_lnfn
// with N = 'Joe Chung' obtains LN = 'Chung' and FN = 'Joe'.
func TestDecompForward(t *testing.T) {
	tbl := newTable(t)
	envs, err := tbl.Eval(pred(t, "decomp(N, LN, FN)"), env(t, "N", "Joe Chung"))
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d envs", len(envs))
	}
	if b, _ := envs[0].Lookup("LN"); !b.Val.Equal(oem.String("Chung")) {
		t.Fatalf("LN = %v", b)
	}
	if b, _ := envs[0].Lookup("FN"); !b.Val.Equal(oem.String("Joe")) {
		t.Fatalf("FN = %v", b)
	}
}

func TestDecompBackward(t *testing.T) {
	tbl := newTable(t)
	envs, err := tbl.Eval(pred(t, "decomp(N, LN, FN)"), env(t, "LN", "Chung", "FN", "Joe"))
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d envs", len(envs))
	}
	if b, _ := envs[0].Lookup("N"); !b.Val.Equal(oem.String("Joe Chung")) {
		t.Fatalf("N = %v", b)
	}
}

func TestDecompAllBoundCheck(t *testing.T) {
	tbl := newTable(t)
	// With all three bound, the first applicable impl is name_to_lnfn:
	// outputs must unify with the bound LN/FN values.
	good, err := tbl.Eval(pred(t, "decomp(N, LN, FN)"),
		env(t, "N", "Joe Chung", "LN", "Chung", "FN", "Joe"))
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 1 {
		t.Fatalf("valid decomposition rejected")
	}
	bad, err := tbl.Eval(pred(t, "decomp(N, LN, FN)"),
		env(t, "N", "Joe Chung", "LN", "Smith", "FN", "Joe"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("invalid decomposition accepted")
	}
}

func TestDecompWithConstants(t *testing.T) {
	tbl := newTable(t)
	envs, err := tbl.Eval(pred(t, "decomp('Joe Chung', LN, FN)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("got %d envs", len(envs))
	}
	// Constants in output positions act as checks.
	ok, err := tbl.Eval(pred(t, "decomp('Joe Chung', 'Chung', FN)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 1 {
		t.Fatal("matching output constant rejected")
	}
	no, err := tbl.Eval(pred(t, "decomp('Joe Chung', 'Smith', FN)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(no) != 0 {
		t.Fatal("mismatching output constant accepted")
	}
}

func TestNoApplicableImplementation(t *testing.T) {
	tbl := newTable(t)
	_, err := tbl.Eval(pred(t, "decomp(N, LN, FN)"), env(t, "FN", "Joe"))
	if err == nil {
		t.Fatal("expected no-applicable-implementation error")
	}
}

func TestUndeclaredPredicate(t *testing.T) {
	tbl := newTable(t)
	if _, err := tbl.Eval(pred(t, "mystery(X)"), env(t, "X", 1)); err == nil {
		t.Fatal("undeclared predicate evaluated")
	}
	if tbl.Knows("mystery") {
		t.Fatal("Knows(mystery)")
	}
	if !tbl.Knows("decomp") || !tbl.Knows("lt") {
		t.Fatal("Knows(decomp/lt) should be true")
	}
}

func TestCanEval(t *testing.T) {
	tbl := newTable(t)
	p := pred(t, "decomp(N, LN, FN)")
	if tbl.CanEval(p, map[string]bool{}) {
		t.Fatal("decomp with nothing bound should not be evaluable")
	}
	if !tbl.CanEval(p, map[string]bool{"N": true}) {
		t.Fatal("decomp with N bound should be evaluable")
	}
	if !tbl.CanEval(p, map[string]bool{"LN": true, "FN": true}) {
		t.Fatal("decomp with LN,FN bound should be evaluable")
	}
	cmp := pred(t, "lt(X, 3)")
	if tbl.CanEval(cmp, map[string]bool{}) {
		t.Fatal("lt with X unbound should not be evaluable")
	}
	if !tbl.CanEval(cmp, map[string]bool{"X": true}) {
		t.Fatal("lt with X bound should be evaluable")
	}
}

func TestBuiltinComparisons(t *testing.T) {
	tbl := newTable(t)
	cases := []struct {
		src  string
		x    any
		want int
	}{
		{"lt(X, 3)", 2, 1},
		{"lt(X, 3)", 3, 0},
		{"le(X, 3)", 3, 1},
		{"gt(X, 3)", 4, 1},
		{"gt(X, 3)", 3, 0},
		{"ge(X, 3)", 3, 1},
		{"eq(X, 3)", 3, 1},
		{"eq(X, 3)", 4, 0},
		{"ne(X, 3)", 4, 1},
		{"ne(X, 3)", 3, 0},
		{"lt(X, 'm')", "a", 1},
		{"lt(X, 'm')", "z", 0},
		{"eq(X, 3)", "three", 0}, // incomparable: fails quietly
		{"ne(X, 3)", "three", 1}, // incomparable but unequal: holds
		{"lt(X, 3)", "three", 0}, // incomparable ordering: fails
		{"eq(X, 3.0)", 3, 1},     // numeric cross-kind
	}
	for _, c := range cases {
		envs, err := tbl.Eval(pred(t, c.src), env(t, "X", c.x))
		if err != nil {
			t.Errorf("%s with X=%v: %v", c.src, c.x, err)
			continue
		}
		if len(envs) != c.want {
			t.Errorf("%s with X=%v: %d envs, want %d", c.src, c.x, len(envs), c.want)
		}
	}
	if _, err := tbl.Eval(pred(t, "lt(X, 1, 2)"), env(t, "X", 1)); err == nil {
		t.Error("ternary lt accepted")
	}
	if _, err := tbl.Eval(pred(t, "lt(X, 3)"), nil); err == nil {
		t.Error("lt with unbound X should error")
	}
}

func TestStructuralBuiltins(t *testing.T) {
	tbl := newTable(t)
	rest := oem.Set{
		oem.New("", "e_mail", "a@x"),
		oem.New("", "year", 3),
	}
	e, _ := match.Env(nil).Extend("R", match.BindVal(rest))
	check := func(src string, want int) {
		t.Helper()
		envs, err := tbl.Eval(pred(t, src), e)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(envs) != want {
			t.Errorf("%s: %d envs, want %d", src, len(envs), want)
		}
	}
	check(`has(R, 'e_mail')`, 1)
	check(`has(R, 'phone')`, 0)
	check(`lacks(R, 'phone')`, 1)
	check(`lacks(R, 'year')`, 0)
	// Errors: non-set first arg, non-string label, wrong arity, unbound.
	atomEnv, _ := match.Env(nil).Extend("R", match.BindVal(oem.Int(3)))
	if _, err := tbl.Eval(pred(t, `has(R, 'x')`), atomEnv); err == nil {
		t.Error("atomic set argument accepted")
	}
	if _, err := tbl.Eval(pred(t, `has(R, 3)`), e); err == nil {
		t.Error("integer label accepted")
	}
	if _, err := tbl.Eval(pred(t, `has(R)`), e); err == nil {
		t.Error("unary has accepted")
	}
	if _, err := tbl.Eval(pred(t, `lacks(Z, 'x')`), e); err == nil {
		t.Error("unbound set accepted")
	}
	if !tbl.Knows("has") || !tbl.Knows("lacks") {
		t.Error("structural builtins unknown")
	}
	if !tbl.CanEval(pred(t, `has(R, 'x')`), map[string]bool{"R": true}) {
		t.Error("CanEval(has) with R bound")
	}
	if tbl.CanEval(pred(t, `has(R, 'x')`), nil) {
		t.Error("CanEval(has) with R unbound")
	}
}

func TestMultivaluedFunction(t *testing.T) {
	reg := NewRegistry()
	reg.Register("aliases", func(bound []oem.Value) ([][]oem.Value, error) {
		return [][]oem.Value{{oem.String("Bob")}, {oem.String("Rob")}}, nil
	})
	prog := msl.MustParseProgram(`alias(bound, free) by aliases.`)
	tbl, err := NewTable(reg, prog.Decls)
	if err != nil {
		t.Fatal(err)
	}
	envs, err := tbl.Eval(pred(t, "alias(N, A)"), env(t, "N", "Robert"))
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("multivalued function produced %d envs, want 2", len(envs))
	}
}

func TestFunctionErrorPropagates(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("boom")
	reg.Register("bad", func([]oem.Value) ([][]oem.Value, error) { return nil, boom })
	prog := msl.MustParseProgram(`bad(bound) by bad.`)
	tbl, _ := NewTable(reg, prog.Decls)
	_, err := tbl.Eval(pred(t, "bad(X)"), env(t, "X", 1))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewTableErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := NewTable(reg, msl.MustParseProgram(`p(bound) by nosuch.`).Decls); err == nil {
		t.Fatal("unregistered function accepted")
	}
	reg.Register("f1", func([]oem.Value) ([][]oem.Value, error) { return nil, nil })
	bad := msl.MustParseProgram(`p(bound) by f1. p(bound, free) by f1.`)
	if _, err := NewTable(reg, bad.Decls); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestArityMismatchAtCall(t *testing.T) {
	tbl := newTable(t)
	if _, err := tbl.Eval(pred(t, "decomp(N, LN)"), env(t, "N", "Joe Chung")); err == nil {
		t.Fatal("wrong arity call accepted")
	}
}

func TestObjectBoundArgumentRejected(t *testing.T) {
	tbl := newTable(t)
	e, _ := match.Env(nil).Extend("N", match.BindObj(oem.New("", "name", "x")))
	if _, err := tbl.Eval(pred(t, "decomp(N, LN, FN)"), e); err == nil {
		t.Fatal("object-bound argument accepted as value")
	}
}

func TestStdlibFunctions(t *testing.T) {
	reg := NewRegistry()
	call := func(name string, args ...any) ([][]oem.Value, error) {
		fn, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("stdlib missing %s", name)
		}
		vals := make([]oem.Value, len(args))
		for i, a := range args {
			vals[i] = oem.Atom(a)
		}
		return fn(vals)
	}
	if out, _ := call("name_to_lnfn", "Mary Jo Chung"); string(out[0][0].(oem.String)) != "Chung" ||
		string(out[0][1].(oem.String)) != "Mary Jo" {
		t.Errorf("name_to_lnfn multiword: %v", out)
	}
	if out, _ := call("name_to_lnfn", "Plato"); string(out[0][0].(oem.String)) != "Plato" ||
		string(out[0][1].(oem.String)) != "" {
		t.Errorf("name_to_lnfn single token: %v", out)
	}
	if out, _ := call("name_to_lnfn", "   "); len(out) != 0 {
		t.Errorf("name_to_lnfn empty: %v", out)
	}
	if out, _ := call("lnfn_to_name", "Chung", "Joe"); string(out[0][0].(oem.String)) != "Joe Chung" {
		t.Errorf("lnfn_to_name: %v", out)
	}
	if out, _ := call("lower", "ABC"); string(out[0][0].(oem.String)) != "abc" {
		t.Errorf("lower: %v", out)
	}
	if out, _ := call("upper", "abc"); string(out[0][0].(oem.String)) != "ABC" {
		t.Errorf("upper: %v", out)
	}
	if out, _ := call("concat", "a", "b"); string(out[0][0].(oem.String)) != "ab" {
		t.Errorf("concat: %v", out)
	}
	if out, _ := call("normalize_author", "Joe Chung"); string(out[0][0].(oem.String)) != "Chung, Joe" {
		t.Errorf("normalize_author from First Last: %v", out)
	}
	if out, _ := call("normalize_author", "Chung,Joe"); string(out[0][0].(oem.String)) != "Chung, Joe" {
		t.Errorf("normalize_author from Last,First: %v", out)
	}
	if _, err := call("name_to_lnfn", 3); err == nil {
		t.Error("name_to_lnfn accepted an integer")
	}
	if out, _ := call("check_name_lnfn", "Joe Chung", "Chung", "Joe"); len(out) != 1 {
		t.Errorf("check_name_lnfn valid: %v", out)
	}
	if out, _ := call("check_name_lnfn", "Joe Chung", "Smith", "Joe"); len(out) != 0 {
		t.Errorf("check_name_lnfn invalid: %v", out)
	}
}

func TestRegistryNames(t *testing.T) {
	reg := NewRegistry()
	names := reg.Names()
	if len(names) == 0 {
		t.Fatal("stdlib not registered")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
	reg.Register("zzz_custom", func([]oem.Value) ([][]oem.Value, error) { return nil, nil })
	if _, ok := reg.Lookup("zzz_custom"); !ok {
		t.Fatal("custom registration lost")
	}
}
