package extfn

import (
	"fmt"
	"strings"

	"medmaker/internal/oem"
)

// registerStdlib installs the standard function library used by the
// paper's examples and by the bundled mediator specifications:
//
//	name_to_lnfn     'Joe Chung' -> 'Chung', 'Joe'
//	lnfn_to_name     'Chung', 'Joe' -> 'Joe Chung'
//	check_name_lnfn  all three bound: verify the correspondence
//	lower / upper    case conversion
//	concat           s1, s2 -> s1+s2
//	normalize_author 'Chung, Joe' or 'Joe Chung' -> 'Chung, Joe'
func registerStdlib(r *Registry) {
	r.Register("name_to_lnfn", NameToLnFn)
	r.Register("lnfn_to_name", LnFnToName)
	r.Register("check_name_lnfn", CheckNameLnFn)
	r.Register("lower", stringUnary(strings.ToLower))
	r.Register("upper", stringUnary(strings.ToUpper))
	r.Register("concat", Concat)
	r.Register("normalize_author", NormalizeAuthor)
}

func oneString(v oem.Value, what string) (string, error) {
	s, ok := v.(oem.String)
	if !ok {
		return "", fmt.Errorf("%s must be a string, got %s (%s)", what, v, v.Kind())
	}
	return string(s), nil
}

// NameToLnFn decomposes a full name into (last, first). The last
// whitespace-separated token is the last name and everything before it the
// first name(s), so 'Mary Jo Chung' yields ('Chung', 'Mary Jo'). A
// single-token name has an empty first name.
func NameToLnFn(bound []oem.Value) ([][]oem.Value, error) {
	if len(bound) != 1 {
		return nil, fmt.Errorf("name_to_lnfn expects 1 bound argument, got %d", len(bound))
	}
	full, err := oneString(bound[0], "full name")
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(full)
	if len(fields) == 0 {
		return nil, nil // no decomposition of an empty name
	}
	last := fields[len(fields)-1]
	first := strings.Join(fields[:len(fields)-1], " ")
	return [][]oem.Value{{oem.String(last), oem.String(first)}}, nil
}

// LnFnToName composes (last, first) into a full name 'First Last'.
func LnFnToName(bound []oem.Value) ([][]oem.Value, error) {
	if len(bound) != 2 {
		return nil, fmt.Errorf("lnfn_to_name expects 2 bound arguments, got %d", len(bound))
	}
	last, err := oneString(bound[0], "last name")
	if err != nil {
		return nil, err
	}
	first, err := oneString(bound[1], "first name")
	if err != nil {
		return nil, err
	}
	full := strings.TrimSpace(first + " " + last)
	if full == "" {
		return nil, nil
	}
	return [][]oem.Value{{oem.String(full)}}, nil
}

// CheckNameLnFn verifies decomp with all three arguments bound: it holds
// when the full name decomposes to exactly the given last and first names.
func CheckNameLnFn(bound []oem.Value) ([][]oem.Value, error) {
	if len(bound) != 3 {
		return nil, fmt.Errorf("check_name_lnfn expects 3 bound arguments, got %d", len(bound))
	}
	tuples, err := NameToLnFn(bound[:1])
	if err != nil {
		return nil, err
	}
	for _, tup := range tuples {
		if tup[0].Equal(bound[1]) && tup[1].Equal(bound[2]) {
			return [][]oem.Value{{}}, nil // holds; no outputs
		}
	}
	return nil, nil
}

func stringUnary(f func(string) string) Func {
	return func(bound []oem.Value) ([][]oem.Value, error) {
		if len(bound) != 1 {
			return nil, fmt.Errorf("expected 1 bound argument, got %d", len(bound))
		}
		s, err := oneString(bound[0], "argument")
		if err != nil {
			return nil, err
		}
		return [][]oem.Value{{oem.String(f(s))}}, nil
	}
}

// Concat concatenates two bound strings into one output.
func Concat(bound []oem.Value) ([][]oem.Value, error) {
	if len(bound) != 2 {
		return nil, fmt.Errorf("concat expects 2 bound arguments, got %d", len(bound))
	}
	a, err := oneString(bound[0], "first argument")
	if err != nil {
		return nil, err
	}
	b, err := oneString(bound[1], "second argument")
	if err != nil {
		return nil, err
	}
	return [][]oem.Value{{oem.String(a + b)}}, nil
}

// NormalizeAuthor canonicalizes an author name to 'Last, First' — the
// format the paper's introduction gives as the mediator's cleaning
// example. It accepts 'Last, First' (returned as-is, space-normalized) and
// 'First Last'.
func NormalizeAuthor(bound []oem.Value) ([][]oem.Value, error) {
	if len(bound) != 1 {
		return nil, fmt.Errorf("normalize_author expects 1 bound argument, got %d", len(bound))
	}
	name, err := oneString(bound[0], "author name")
	if err != nil {
		return nil, err
	}
	if i := strings.IndexByte(name, ','); i >= 0 {
		last := strings.TrimSpace(name[:i])
		first := strings.TrimSpace(name[i+1:])
		if last == "" {
			return nil, nil
		}
		out := last
		if first != "" {
			out += ", " + first
		}
		return [][]oem.Value{{oem.String(out)}}, nil
	}
	tuples, err := NameToLnFn([]oem.Value{oem.String(name)})
	if err != nil || len(tuples) == 0 {
		return nil, err
	}
	last := string(tuples[0][0].(oem.String))
	first := string(tuples[0][1].(oem.String))
	out := last
	if first != "" {
		out += ", " + first
	}
	return [][]oem.Value{{oem.String(out)}}, nil
}
