// Package oemstore provides a native OEM source: a wrapper over a store
// of OEM objects, with optional loading from files in the textual OEM
// format. It is the simplest kind of source — the data already is OEM —
// and serves as the reference implementation of the Source interface.
package oemstore

import (
	"context"
	"fmt"
	"os"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Source is a fully-capable OEM-native source. Mutations (Add, Remove)
// emit change-feed deltas to wrapper.Notifier subscribers.
type Source struct {
	name  string
	store *oem.Store
	gen   *oem.IDGen
	feed  wrapper.Feed
}

var (
	_ wrapper.Source              = (*Source)(nil)
	_ wrapper.BatchQuerier        = (*Source)(nil)
	_ wrapper.ContextSource       = (*Source)(nil)
	_ wrapper.ContextBatchQuerier = (*Source)(nil)
	_ wrapper.Notifier            = (*Source)(nil)
)

// New returns an empty source with the given name. Objects added later
// get oids prefixed with the source name.
func New(name string) *Source {
	return &Source{
		name:  name,
		store: oem.NewStore(name),
		gen:   oem.NewIDGen(name + "q"),
	}
}

// FromObjects returns a source pre-populated with the given top-level
// objects.
func FromObjects(name string, objs ...*oem.Object) (*Source, error) {
	s := New(name)
	if err := s.Add(objs...); err != nil {
		return nil, err
	}
	return s, nil
}

// FromText parses textual OEM data and returns a source holding it.
func FromText(name, text string) (*Source, error) {
	objs, err := oem.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("oemstore: %s: %w", name, err)
	}
	return FromObjects(name, objs...)
}

// FromFile loads a textual OEM file.
func FromFile(name, path string) (*Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oemstore: %w", err)
	}
	return FromText(name, string(data))
}

// FromJSON builds a source from a JSON document: a top-level array yields
// one object per element, anything else a single object, labelled label.
func FromJSON(name, label string, data []byte) (*Source, error) {
	objs, err := oem.FromJSONArray(label, data)
	if err != nil {
		// Not an array: try a single document.
		obj, err2 := oem.FromJSON(label, data)
		if err2 != nil {
			return nil, fmt.Errorf("oemstore: %s: %w", name, err)
		}
		objs = []*oem.Object{obj}
	}
	return FromObjects(name, objs...)
}

// FromJSONFile loads a JSON file (see FromJSON).
func FromJSONFile(name, label, path string) (*Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oemstore: %w", err)
	}
	return FromJSON(name, label, data)
}

// Add inserts top-level objects and emits an insert delta to change-feed
// subscribers once the store mutation is complete.
func (s *Source) Add(objs ...*oem.Object) error {
	if err := s.store.Add(objs...); err != nil {
		return err
	}
	if s.feed.Active() {
		s.feed.Emit(wrapper.Delta{Source: s.name, Inserted: append([]*oem.Object(nil), objs...)})
	}
	return nil
}

// Remove deletes the top-level objects with the given oids and emits a
// delete delta carrying the removed roots. OIDs not naming a top-level
// object are ignored.
func (s *Source) Remove(oids ...oem.OID) []*oem.Object {
	removed := s.store.Remove(oids...)
	if len(removed) > 0 {
		s.feed.Emit(wrapper.Delta{Source: s.name, Deleted: removed})
	}
	return removed
}

// OnChange implements wrapper.Notifier: fn receives a delta after every
// subsequent Add or Remove.
func (s *Source) OnChange(fn func(wrapper.Delta)) { s.feed.OnChange(fn) }

// SaveFile writes the source's objects to path in the textual OEM format;
// FromFile reads them back.
func (s *Source) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("oemstore: %w", err)
	}
	var fmtr oem.Formatter
	if err := fmtr.Format(f, s.store.TopLevel()...); err != nil {
		f.Close()
		return fmt.Errorf("oemstore: writing %s: %w", path, err)
	}
	return f.Close()
}

// Store exposes the underlying object store.
func (s *Source) Store() *oem.Store { return s.store }

// Name implements wrapper.Source.
func (s *Source) Name() string { return s.name }

// Capabilities implements wrapper.Source; OEM-native sources support the
// full query language.
func (s *Source) Capabilities() wrapper.Capabilities {
	return wrapper.FullCapabilities()
}

// Query implements wrapper.Source.
func (s *Source) Query(q *msl.Rule) ([]*oem.Object, error) {
	return wrapper.Eval(q, s.store.TopLevel(), s.gen)
}

// QueryContext implements wrapper.ContextSource. Matching is in-process
// and fast, so the context is only consulted up front; a store large
// enough to matter is bounded by the engine's own stride checks instead.
func (s *Source) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Query(q)
}

// QueryBatch implements wrapper.BatchQuerier: an in-process source
// accepts a whole batch in one call, so a batch of parameterized queries
// costs one exchange.
func (s *Source) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQuery(s, qs)
}

// QueryBatchContext implements wrapper.ContextBatchQuerier, checking the
// context between the batch's queries.
func (s *Source) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQueryContext(ctx, s, qs)
}

// CountLabel implements wrapper.Counter.
func (s *Source) CountLabel(label string) (int, bool) {
	n := 0
	for _, o := range s.store.TopLevel() {
		if o.Label == label {
			n++
		}
	}
	return n, true
}
