package oemstore

import (
	"os"
	"path/filepath"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

const sample = `
<&p1, person, set, {&n1}>
  <&n1, name, string, 'Joe Chung'>
<&p2, person, set, {&n2}>
  <&n2, name, string, 'Sue Wong'>
;`

func TestFromTextAndQuery(t *testing.T) {
	src, err := FromText("people", sample)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "people" {
		t.Fatal("name")
	}
	if !src.Capabilities().Wildcards {
		t.Fatal("oem-native source should be fully capable")
	}
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@people.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("query returned %d objects", len(got))
	}
}

func TestFromTextError(t *testing.T) {
	if _, err := FromText("x", "<<<"); err == nil {
		t.Fatal("bad OEM text accepted")
	}
}

func TestFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "people.oem")
	if err := os.WriteFile(path, []byte(sample), 0o600); err != nil {
		t.Fatal(err)
	}
	src, err := FromFile("people", path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Store().Len() != 2 {
		t.Fatalf("loaded %d objects", src.Store().Len())
	}
	if _, err := FromFile("people", filepath.Join(dir, "missing.oem")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestAddAndAutoOIDs(t *testing.T) {
	src := New("s")
	obj := oem.NewSet("", "person", oem.New("", "name", "Ann"))
	if err := src.Add(obj); err != nil {
		t.Fatal(err)
	}
	if obj.OID == oem.NilOID {
		t.Fatal("store did not assign an oid")
	}
	q := msl.MustParseRule(`P :- P:<person>@s.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("query returned %d", len(got))
	}
}

func TestFromJSON(t *testing.T) {
	src, err := FromJSON("people", "person", []byte(`[
	    {"name": "Joe", "dept": "CS"},
	    {"name": "Sue", "office": "G1"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@people.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("JSON source answered %d", len(got))
	}
	// Single-document form.
	one, err := FromJSON("cfg", "config", []byte(`{"mode": "fast"}`))
	if err != nil {
		t.Fatal(err)
	}
	if one.Store().Len() != 1 {
		t.Fatal("single-document JSON")
	}
	if _, err := FromJSON("bad", "x", []byte(`{{`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(`[{"name": "A"}]`), 0o600); err != nil {
		t.Fatal(err)
	}
	src, err := FromJSONFile("p", "person", path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Store().Len() != 1 {
		t.Fatal("load")
	}
	if _, err := FromJSONFile("p", "person", filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveFileRoundTrip(t *testing.T) {
	src, err := FromText("s", sample)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.oem")
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := FromFile("s", path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := src.Store().TopLevel(), back.Store().TopLevel()
	if len(a) != len(b) {
		t.Fatalf("round trip sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].StructuralEqual(b[i]) {
			t.Fatalf("object %d changed:\n%s", i, oem.Format(b[i]))
		}
	}
	if err := src.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir.oem")); err == nil {
		t.Fatal("SaveFile into missing directory succeeded")
	}
}

func TestCountLabel(t *testing.T) {
	src, err := FromText("s", `<person, set, {}> <person, set, {}> <book, set, {}>`)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := src.CountLabel("person"); !ok || n != 2 {
		t.Fatalf("CountLabel(person) = %d, %v", n, ok)
	}
	if n, ok := src.CountLabel("ghost"); !ok || n != 0 {
		t.Fatalf("CountLabel(ghost) = %d, %v", n, ok)
	}
}

func TestFromObjects(t *testing.T) {
	src, err := FromObjects("s", oem.MustParse(sample)...)
	if err != nil {
		t.Fatal(err)
	}
	if src.Store().Len() != 2 {
		t.Fatal("FromObjects lost objects")
	}
	// Duplicate oids across adds are rejected.
	if err := src.Add(oem.New("&p1", "person", 1)); err == nil {
		t.Fatal("duplicate oid accepted")
	}
}
