package medmaker

// Replicated sources, end to end through the mediator: N answer-
// equivalent members behind one logical name must be indistinguishable
// from a single member, keep answering while any member is healthy, and
// — once the statistics store has observed exchange latencies — route
// exchanges away from a slow member.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// laggedSource adds a fixed latency to every query against the wrapped
// member — the injected-slow replica.
type laggedSource struct {
	inner Source
	delay time.Duration
}

func (d *laggedSource) Name() string               { return d.inner.Name() }
func (d *laggedSource) Capabilities() Capabilities { return d.inner.Capabilities() }
func (d *laggedSource) Query(q *msl.Rule) ([]*Object, error) {
	time.Sleep(d.delay)
	return d.inner.Query(q)
}

// replicaExtent builds one member store holding the shared persons
// extent; every member must answer identically.
func replicaExtent(t *testing.T, name string, persons int) *OEMSource {
	t.Helper()
	src := NewOEMSource(name)
	for i := 0; i < persons; i++ {
		if err := src.Add(oem.NewSet("", "person",
			oem.New("", "name", fmt.Sprintf("P%03d", i)),
			oem.New("", "dept", []string{"CS", "EE"}[i%2]))); err != nil {
			t.Fatal(err)
		}
	}
	return src
}

func replicaMediator(t *testing.T, rep Source) *Mediator {
	t.Helper()
	med, err := New(Config{
		Name:    "med",
		Spec:    `<profile {<name N> <dept D>}> :- <person {<name N> <dept D>}>@rep.`,
		Sources: []Source{rep},
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

var replicaQueries = []string{
	`X :- X:<profile {<name N>}>@med.`,
	`X :- X:<profile {<dept 'CS'>}>@med.`,
	`X :- X:<profile {<name 'P003'>}>@med.`,
}

// TestReplicatedSourceMatchesSingleMember: the replicated composite is a
// pure availability/latency construct — answers must be byte-identical
// to a mediator over one member alone.
func TestReplicatedSourceMatchesSingleMember(t *testing.T) {
	rep, err := NewReplicatedSource("rep",
		replicaExtent(t, "r0", 12), replicaExtent(t, "r1", 12), replicaExtent(t, "r2", 12))
	if err != nil {
		t.Fatal(err)
	}
	replicated := replicaMediator(t, rep)
	single := replicaMediator(t, replicaExtent(t, "rep", 12))
	for _, q := range replicaQueries {
		want, err := single.QueryString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := replicated.QueryString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !reflect.DeepEqual(canonicalize(got), canonicalize(want)) {
			t.Fatalf("%s: replicated answers diverge from single member", q)
		}
	}
}

// TestReplicatedFailoverKeepsAnswering: with the first member down hard,
// every exchange fails over to a healthy sibling — full answers, no
// error surfaced, and the failover counter moves.
func TestReplicatedFailoverKeepsAnswering(t *testing.T) {
	dead := &flakySource{inner: replicaExtent(t, "r0", 12), failures: 1 << 30}
	rep, err := NewReplicatedSource("rep", dead, replicaExtent(t, "r1", 12))
	if err != nil {
		t.Fatal(err)
	}
	med := replicaMediator(t, rep)
	single := replicaMediator(t, replicaExtent(t, "rep", 12))
	before := metrics.Default().Snapshot()
	for _, q := range replicaQueries {
		want, err := single.QueryString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := med.QueryString(q)
		if err != nil {
			t.Fatalf("%s: failover did not absorb the dead member: %v", q, err)
		}
		if !reflect.DeepEqual(canonicalize(got), canonicalize(want)) {
			t.Fatalf("%s: degraded answers", q)
		}
	}
	after := metrics.Default().Snapshot()
	if d := after.Counter("replica.failover") - before.Counter("replica.failover"); d <= 0 {
		t.Fatalf("failover counter moved by %d, want > 0", d)
	}
	if d := after.Counter("replica.routed.r0") - before.Counter("replica.routed.r0"); d != 0 {
		t.Fatalf("%d exchanges credited to the dead member", d)
	}
}

// TestReplicatedRoutingAvoidsSlow: after the first exchanges teach the
// store each member's latency, the router must send the bulk of the
// remaining traffic to the fast members.
func TestReplicatedRoutingAvoidsSlow(t *testing.T) {
	slow := &laggedSource{inner: replicaExtent(t, "r1", 12), delay: 25 * time.Millisecond}
	rep, err := NewReplicatedSource("rep",
		replicaExtent(t, "r0", 12), slow, replicaExtent(t, "r2", 12))
	if err != nil {
		t.Fatal(err)
	}
	med := replicaMediator(t, rep)
	before := metrics.Default().Snapshot()
	const queries = 30
	for i := 0; i < queries; i++ {
		q := fmt.Sprintf(`X :- X:<profile {<name 'P%03d'>}>@med.`, i%12)
		if objs, err := med.QueryString(q); err != nil || len(objs) != 1 {
			t.Fatalf("query %d: %d objects, %v", i, len(objs), err)
		}
	}
	after := metrics.Default().Snapshot()
	delta := func(name string) int64 { return after.Counter(name) - before.Counter(name) }
	total := delta("replica.exchanges")
	toSlow := delta("replica.routed.r1")
	if total < queries {
		t.Fatalf("only %d exchanges recorded for %d queries", total, queries)
	}
	// Exploration legitimately sends the first exchange or two to the
	// slow member; after that its observed latency keeps it ranked last.
	if float64(toSlow) > 0.2*float64(total) {
		t.Fatalf("slow member served %d of %d exchanges", toSlow, total)
	}
	if delta("replica.routed.r0")+delta("replica.routed.r2") < total-toSlow {
		t.Fatalf("exchanges unaccounted for: r0=%d r1=%d r2=%d total=%d",
			delta("replica.routed.r0"), toSlow, delta("replica.routed.r2"), total)
	}
}
