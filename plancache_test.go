package medmaker

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"medmaker/internal/metrics"
	"medmaker/internal/trace"
)

func planCacheMediator(t *testing.T, reg *metrics.Registry) *Mediator {
	t.Helper()
	src, err := NewOEMSourceFromText("people", `
		<person, set, {<name, 'Ann'>, <dept, 'CS'>}>
		<person, set, {<name, 'Bob'>, <dept, 'CS'>}>
		<person, set, {<name, 'Cyd'>, <dept, 'EE'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name:      "med",
		Spec:      `<staff {<name N> <dept D>}> :- <person {<name N> <dept D>}>@people.`,
		Sources:   []Source{src},
		PlanCache: &PlanCacheOptions{MaxEntries: 64, Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

// A warm plan-cache hit must leave only execution time in the trace: the
// expand phase open but ≈ empty, no plan phase, and a cached-plan
// annotation — the directly measurable win the cache exists for.
func TestPlanCacheWarmTracePhases(t *testing.T) {
	med := planCacheMediator(t, metrics.NewRegistry())
	q, err := ParseQuery(`X :- X:<staff {<name N> <dept 'CS'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cold, coldTrace, err := med.QueryTraced(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	coldSnap := coldTrace.Snapshot()
	if coldSnap.Annotations["cached-plan"] != 0 {
		t.Fatal("cold query claims a cached plan")
	}
	phaseSet := map[string]bool{}
	for _, p := range coldSnap.Phases {
		phaseSet[p.Name] = true
	}
	if !phaseSet[trace.PhaseExpand] || !phaseSet[trace.PhasePlan] {
		t.Fatalf("cold trace missing compile phases: %v", coldSnap.Phases)
	}

	// Alpha-renamed + same shape: must hit the same cached plan.
	q2, err := ParseQuery(`Y :- Y:<staff {<name M> <dept 'CS'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmTrace, err := med.QueryTraced(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	warmSnap := warmTrace.Snapshot()
	if warmSnap.Annotations["cached-plan"] != 1 {
		t.Fatalf("warm query not served from plan cache: annotations %v", warmSnap.Annotations)
	}
	var exec int64
	for _, p := range warmSnap.Phases {
		if p.Name == trace.PhasePlan {
			t.Fatalf("warm trace still has a plan phase: %v", warmSnap.Phases)
		}
		if p.Name == trace.PhaseExecute {
			exec += p.Nanos
		}
	}
	// Compile time (everything but execute) should be a sliver of the
	// total on a hit; allow generous slack for scheduler noise.
	if compile := warmSnap.TotalNanos - exec; compile > warmSnap.TotalNanos/2 && warmSnap.TotalNanos > 1e6 {
		t.Errorf("warm query spent %dns outside execution (total %dns)", compile, warmSnap.TotalNanos)
	}
	if got, want := canonicalize(warm.Objects), canonicalize(cold.Objects); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cached plan changed the answer:\ncold %v\nwarm %v", want, got)
	}
	st := med.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// AddSource (a source replacement) and Invalidate must retire plans
// compiled against the old source; unrelated names must not.
func TestPlanCacheInvalidation(t *testing.T) {
	med := planCacheMediator(t, metrics.NewRegistry())
	q, err := ParseQuery(`X :- X:<staff {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := med.PlanCacheStats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	med.Invalidate("unrelated")
	if st := med.PlanCacheStats(); st.Entries != 1 {
		t.Fatalf("Invalidate(unrelated) dropped the plan")
	}
	med.Invalidate("people")
	if st := med.PlanCacheStats(); st.Entries != 0 || st.Invalidated != 1 {
		t.Fatalf("Invalidate(people) left stats %+v", st)
	}

	// Recompile, then replace the source with different data under the
	// same name: the plan must be dropped and the answer reflect the
	// replacement.
	before, err := med.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	replacement, err := NewOEMSourceFromText("people", `
		<person, set, {<name, 'Zoe'>, <dept, 'CS'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	med.AddSource(replacement)
	if st := med.PlanCacheStats(); st.Entries != 0 {
		t.Fatalf("AddSource left a stale plan: %+v", st)
	}
	after, err := med.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) == len(before) {
		t.Fatalf("replacement not visible: %d objects before and after", len(before))
	}
}

// Invalidating a materialized-view label also retires plans whose query
// referenced that view head.
func TestPlanCacheViewLabelInvalidation(t *testing.T) {
	med := planCacheMediator(t, metrics.NewRegistry())
	q, err := ParseQuery(`X :- X:<staff {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.Query(q); err != nil {
		t.Fatal(err)
	}
	if n := med.Invalidate("staff"); n != 0 {
		t.Fatalf("no matviews configured, yet %d extents marked", n)
	}
	if st := med.PlanCacheStats(); st.Entries != 0 {
		t.Fatalf("Invalidate(staff) left the staff plan cached: %+v", st)
	}
}

// Concurrent cold queries on one key compile once (singleflight) and all
// get the right answer.
func TestPlanCacheConcurrentColdStart(t *testing.T) {
	med := planCacheMediator(t, metrics.NewRegistry())
	ref, err := med.QueryString(`X :- X:<staff {<dept 'CS'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	med.Invalidate("")
	base := med.PlanCacheStats() // the reference query's counts
	want := fmt.Sprint(canonicalize(ref))

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-client variable names: alpha-renaming must unify them.
			objs, err := med.QueryString(fmt.Sprintf(`Q%d :- Q%d:<staff {<dept 'CS'>}>@med.`, i, i))
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if got := fmt.Sprint(canonicalize(objs)); got != want {
				errs <- fmt.Errorf("client %d answer diverged:\n got %s\nwant %s", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := med.PlanCacheStats()
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	if got := st.Hits + st.Misses - base.Hits - base.Misses; got != clients {
		t.Errorf("hits+misses counted %d lookups, want %d clients", got, clients)
	}
}
