package medmaker

import (
	"context"
	"strings"
	"testing"

	"medmaker/internal/trace"
)

// traceModes are the execution modes whose observability must agree: the
// serial materialized executor, the parallel materialized executor, and
// the pipelined executor.
var traceModes = []struct {
	name        string
	parallelism int
	pipeline    bool
}{
	{"serial", 1, false},
	{"parallel", 4, false},
	{"pipelined", 4, true},
}

// runTracedQ1 builds a fresh cached mediator in the given mode and
// answers the paper's Q1 with tracing on. A fresh mediator per run keeps
// the statistics store and the caches scoped to exactly this query, so
// the trace's counts must equal theirs.
func runTracedQ1(t *testing.T, parallelism int, pipeline bool) (*Mediator, *QueryResult, trace.Summary) {
	t.Helper()
	cs, whois := newPaperSources(t)
	med, err := New(Config{
		Name:        "med",
		Spec:        specMS1,
		Sources:     []Source{cs, whois},
		Parallelism: parallelism,
		Pipeline:    pipeline,
		Cache:       &CacheOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	res, qt, err := med.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return med, res, qt.Snapshot()
}

// TestTraceAgreesWithEngineCounters is the observability differential:
// in every execution mode, the structured trace must agree exactly with
// the independently-maintained engine statistics store and cache
// counters — same exchanges, same queries, same cache traffic — and its
// phase segments must partition the total wall time.
func TestTraceAgreesWithEngineCounters(t *testing.T) {
	var firstObjects []string
	var firstRoot int64
	for _, mode := range traceModes {
		t.Run(mode.name, func(t *testing.T) {
			med, res, snap := runTracedQ1(t, mode.parallelism, mode.pipeline)

			// Phase segments partition the total exactly (contiguous
			// boundary timestamps, not independent clock reads).
			var phaseSum int64
			for _, p := range snap.Phases {
				phaseSum += p.Nanos
			}
			if phaseSum != snap.TotalNanos {
				t.Errorf("phases sum to %dns, total is %dns", phaseSum, snap.TotalNanos)
			}
			// QueryTraced receives a parsed rule, so the trace starts at
			// expansion; parsing appears on the ExplainAnalyze text path.
			for _, want := range []string{"expand", "plan", "execute"} {
				found := false
				for _, p := range snap.Phases {
					if p.Name == want {
						found = true
					}
				}
				if !found {
					t.Errorf("phase %q missing from %v", want, snap.Phases)
				}
			}

			// Per-source exchange and query counts equal the engine's
			// statistics store, which is updated at the same call sites by
			// independent code.
			stats := med.QueryStats()
			if len(snap.Sources) == 0 {
				t.Fatal("trace recorded no sources")
			}
			for _, src := range snap.Sources {
				if got := int64(stats.SourceExchanges(src.Name)); src.Exchanges != got {
					t.Errorf("%s: trace exchanges %d, stats store %d", src.Name, src.Exchanges, got)
				}
				if got := int64(stats.SourceQueries(src.Name)); src.Queries != got {
					t.Errorf("%s: trace queries %d, stats store %d", src.Name, src.Queries, got)
				}
				// Every exchange has a latency observation.
				if src.Latency.Count != src.Exchanges {
					t.Errorf("%s: %d latency observations for %d exchanges",
						src.Name, src.Latency.Count, src.Exchanges)
				}
			}

			// Cache traffic attributed through the context equals the
			// caches' own counters.
			for name, cs := range med.CacheStats() {
				var traced *trace.SourceSummary
				for i := range snap.Sources {
					if snap.Sources[i].Name == name {
						traced = &snap.Sources[i]
					}
				}
				if cs.Hits+cs.Misses == 0 {
					continue // source never consulted
				}
				if traced == nil {
					t.Errorf("cache %s saw traffic but the trace has no record of the source", name)
					continue
				}
				if traced.CacheHits != int64(cs.Hits) || traced.CacheMisses != int64(cs.Misses) {
					t.Errorf("%s: trace cache %d/%d hits/misses, cache counters %d/%d",
						name, traced.CacheHits, traced.CacheMisses, cs.Hits, cs.Misses)
				}
			}

			// The graph has exactly one root and its output is the answer.
			isKid := map[int]bool{}
			for _, n := range snap.Nodes {
				for _, k := range n.Kids {
					isKid[k] = true
				}
			}
			var roots []trace.NodeSummary
			for _, n := range snap.Nodes {
				if !isKid[n.ID] {
					roots = append(roots, n)
				}
			}
			if len(roots) != 1 {
				t.Fatalf("trace has %d graph roots, want 1", len(roots))
			}
			if roots[0].RowsOut != int64(len(res.Objects)) {
				t.Errorf("root produced %d rows, query answered %d objects",
					roots[0].RowsOut, len(res.Objects))
			}

			// All modes compute the same answer and the same root count.
			objs := canonicalize(res.Objects)
			if firstObjects == nil {
				firstObjects, firstRoot = objs, roots[0].RowsOut
			} else {
				if len(objs) != len(firstObjects) {
					t.Fatalf("mode %s answered %d objects, first mode %d",
						mode.name, len(objs), len(firstObjects))
				}
				for i := range objs {
					if objs[i] != firstObjects[i] {
						t.Errorf("mode %s result %d differs from first mode", mode.name, i)
					}
				}
				if roots[0].RowsOut != firstRoot {
					t.Errorf("mode %s root rows %d, first mode %d", mode.name, roots[0].RowsOut, firstRoot)
				}
			}
		})
	}
}

// TestExplainAnalyzeRendering checks the rendered EXPLAIN ANALYZE form:
// actual row counts, per-source exchange lines, and phase timings.
func TestExplainAnalyzeRendering(t *testing.T) {
	for _, mode := range traceModes {
		t.Run(mode.name, func(t *testing.T) {
			cs, whois := newPaperSources(t)
			med, err := New(Config{
				Name:        "med",
				Spec:        specMS1,
				Sources:     []Source{cs, whois},
				Parallelism: mode.parallelism,
				Pipeline:    mode.pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			out, err := med.ExplainAnalyze(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{
				"-- total", "execute", "rows=", "calls=", "exchanges=",
				"source whois:", "source cs:", "-- 1 result objects --",
			} {
				if !strings.Contains(out, want) {
					t.Errorf("EXPLAIN ANALYZE output lacks %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestExplainRemainsStatic: Explain must not query any source.
func TestExplainRemainsStatic(t *testing.T) {
	cs, whois := newPaperSources(t)
	med, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{cs, whois}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := med.Explain(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "physical datamerge graph") {
		t.Errorf("Explain output lacks the physical graph:\n%s", out)
	}
	if n := med.QueryStats().TotalExchanges(); n != 0 {
		t.Errorf("Explain performed %d source exchanges, want 0", n)
	}
}
