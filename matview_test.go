package medmaker

// Materialized-view integration tests: matview-enabled mediators must be
// answer-indistinguishable from plain ones (differential, every executor
// mode), warm contained queries must perform zero source exchanges
// (proven from the trace, not inferred), and freshness transitions — TTL
// expiry, invalidation, background refresh — must route queries to the
// right path at every step.

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"medmaker/internal/msl"
)

// materializedLabels lists spec's constant head labels — the view heads
// a matview configuration can materialize.
func materializedLabels(t *testing.T, spec string) []MatView {
	t.Helper()
	prog, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	var views []MatView
	seen := map[string]bool{}
	for _, r := range prog.Rules {
		for _, h := range r.Head {
			op, ok := h.(*msl.ObjectPattern)
			if !ok {
				continue
			}
			if l := op.LabelName(); l != "" && !seen[l] {
				seen[l] = true
				views = append(views, MatView{Label: l})
			}
		}
	}
	if len(views) == 0 {
		t.Fatalf("spec has no materializable heads:\n%s", spec)
	}
	return views
}

// TestMatViewDifferential: for every executor mode, a matview-enabled
// mediator must return exactly the answers of a plain one — cold (first
// query pays the build) and warm (served from the extent) alike — across
// the workload spec/query matrix, including specs the matview path must
// decline (pass-through source conjuncts, label variables, negation).
func TestMatViewDifferential(t *testing.T) {
	specs := []string{
		specMS1,
		`<profile {<name N> | R}> :- <person {<name N> | R}>@whois.`,
		`<senior {<name N> <year Y>}> :- <person {<name N> <year Y>}>@whois AND ge(Y, 3).`,
		`<anyone {<who N>}> :- <person {<name N>}>@whois.
		 <anyone {<who FN>}> :- <employee {<first_name FN>}>@cs.`,
		`<lonely {<name N>}> :-
		    <person {<name N> <relation R>}>@whois
		    AND NOT <R {<first_name FN>}>@cs.`,
	}
	queries := []string{
		`X :- X:<cs_person {<name 'P004 Q004'>}>@med.`,
		`X :- X:<cs_person {<year 3>}>@med.`,
		`X :- X:<profile {<name N>}>@med.`,
		`X :- X:<profile {<e_mail E>}>@med.`,
		`X :- X:<senior {<year 5>}>@med.`,
		`X :- X:<anyone {<who W>}>@med.`,
		`X :- X:<lonely {<name N>}>@med.`,
		// Mixed: a mediator conjunct and a direct source conjunct.
		`<both N FN> :- <anyone {<who N>}>@med AND <employee {<first_name FN>}>@cs.`,
	}
	r := rand.New(rand.NewSource(7))
	people := randomPeople(r, 30)
	relations := randomRelations(r, 30)
	for _, mode := range executorModes {
		t.Run(mode.name, func(t *testing.T) {
			for si, spec := range specs {
				whoisSrc := NewOEMSource("whois")
				if err := whoisSrc.Add(people...); err != nil {
					t.Fatal(err)
				}
				csSrc := NewOEMSource("cs")
				if err := csSrc.Add(relations...); err != nil {
					t.Fatal(err)
				}
				base := Config{
					Name: "med", Spec: spec,
					Sources:     []Source{csSrc, whoisSrc},
					Parallelism: mode.parallel,
					Pipeline:    mode.pipeline,
				}
				plain, err := New(base)
				if err != nil {
					t.Fatal(err)
				}
				mat := base
				mat.Materialize = &MatViewOptions{Views: materializedLabels(t, spec)}
				matted, err := New(mat)
				if err != nil {
					t.Fatal(err)
				}
				for qi, qText := range queries {
					q, err := ParseQuery(qText)
					if err != nil {
						t.Fatal(err)
					}
					want, err := plain.Query(q)
					if err != nil {
						continue // query does not apply to this spec
					}
					wantKeys := canonicalize(want)
					for _, pass := range []string{"cold", "warm"} {
						got, err := matted.Query(q)
						if err != nil {
							t.Fatalf("spec=%d query=%d %s: %v", si, qi, pass, err)
						}
						gotKeys := canonicalize(got)
						if len(gotKeys) != len(wantKeys) {
							t.Fatalf("spec=%d query=%d %s: %d objects, plain has %d\nquery: %s",
								si, qi, pass, len(gotKeys), len(wantKeys), qText)
						}
						for i := range gotKeys {
							if gotKeys[i] != wantKeys[i] {
								t.Fatalf("spec=%d query=%d %s: result %d differs\nquery: %s\ngot:  %s\nwant: %s",
									si, qi, pass, i, qText, gotKeys[i], wantKeys[i])
							}
						}
					}
				}
				matted.WaitMatViews()
			}
		})
	}
}

// newMatViewMediator builds a paper-sources MS1 mediator materializing
// cs_person.
func newMatViewMediator(t *testing.T, opts MatViewOptions, mode struct {
	name     string
	parallel int
	pipeline bool
}) *Mediator {
	t.Helper()
	cs, whois := newPaperSources(t)
	if len(opts.Views) == 0 {
		opts.Views = []MatView{{Label: "cs_person"}}
	}
	med, err := New(Config{
		Name:        "med",
		Spec:        specMS1,
		Sources:     []Source{cs, whois},
		Parallelism: mode.parallel,
		Pipeline:    mode.pipeline,
		Materialize: &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

// TestMatViewWarmHitZeroExchanges is the acceptance proof: a repeated
// contained query is served with zero source exchanges. The warm query's
// trace must record no sources at all (a matscan deliberately registers
// none), the statistics store's per-source exchange counters must not
// move, and the hit must be annotated.
func TestMatViewWarmHitZeroExchanges(t *testing.T) {
	for _, mode := range executorModes {
		t.Run(mode.name, func(t *testing.T) {
			med := newMatViewMediator(t, MatViewOptions{}, mode)
			q, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
			if err != nil {
				t.Fatal(err)
			}
			// Cold: pays the materialization (live exchanges happen).
			cold, err := med.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(cold) == 0 {
				t.Fatal("cold query returned nothing")
			}
			stats := med.QueryStats()
			exBefore := map[string]int{}
			for _, src := range med.Sources() {
				exBefore[src] = stats.SourceExchanges(src)
			}

			res, qt, err := med.QueryTraced(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Objects) != len(cold) {
				t.Fatalf("warm answer has %d objects, cold had %d", len(res.Objects), len(cold))
			}
			snap := qt.Snapshot()
			if snap.Annotations["matview.hit"] != 1 {
				t.Fatalf("warm query not annotated as a hit: %v", snap.Annotations)
			}
			if len(snap.Sources) != 0 {
				t.Fatalf("warm hit recorded source traffic: %+v", snap.Sources)
			}
			for _, src := range med.Sources() {
				if got := stats.SourceExchanges(src); got != exBefore[src] {
					t.Fatalf("source %s exchanged during a warm hit: %d -> %d", src, exBefore[src], got)
				}
			}
			if s := med.MatViewStats(); s.Hits < 1 {
				t.Fatalf("matview stats = %+v", s)
			}
		})
	}
}

// TestMatViewNonContainedFallsBack: a query the extent cannot answer —
// here one whose mediator conjunct exceeds the materialized pattern —
// runs live, with source traffic, and still answers correctly.
func TestMatViewNonContainedFallsBack(t *testing.T) {
	for _, mode := range executorModes {
		t.Run(mode.name, func(t *testing.T) {
			med := newMatViewMediator(t, MatViewOptions{Views: []MatView{
				{Label: "cs_person", Pattern: `<cs_person {<relation 'employee'>}>`},
			}}, mode)
			// Not contained: asks for any relation, the extent only holds
			// employees.
			q, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
			if err != nil {
				t.Fatal(err)
			}
			res, qt, err := med.QueryTraced(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			snap := qt.Snapshot()
			if snap.Annotations["matview.miss"] != 1 {
				t.Fatalf("non-contained query not a miss: %v", snap.Annotations)
			}
			if len(snap.Sources) == 0 {
				t.Fatal("live fallback recorded no source traffic")
			}
			if len(res.Objects) == 0 {
				t.Fatal("fallback returned nothing")
			}
			// Contained in the narrowed pattern: served from the extent.
			q2, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'> <relation 'employee'>}>@med.`)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := med.Query(q2); err != nil { // cold build
				t.Fatal(err)
			}
			_, qt2, err := med.QueryTraced(context.Background(), q2)
			if err != nil {
				t.Fatal(err)
			}
			if snap2 := qt2.Snapshot(); snap2.Annotations["matview.hit"] != 1 || len(snap2.Sources) != 0 {
				t.Fatalf("contained query not served: %v, sources %+v", snap2.Annotations, snap2.Sources)
			}
		})
	}
}

// TestMatViewStalenessTTL: after the TTL passes, the query re-expands
// live — visible in the trace as a stale annotation plus real source
// traffic — while a background refresh restores extent serving.
func TestMatViewStalenessTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	med := newMatViewMediator(t, MatViewOptions{
		Views: []MatView{{Label: "cs_person", TTL: time.Minute}},
		Clock: clock,
	}, executorModes[0])
	q, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := med.Query(q) // cold build
	if err != nil {
		t.Fatal(err)
	}

	now = now.Add(2 * time.Minute) // extent ages out
	res, qt, err := med.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	snap := qt.Snapshot()
	if snap.Annotations["matview.stale"] != 1 {
		t.Fatalf("expired query not annotated stale: %v", snap.Annotations)
	}
	if len(snap.Sources) == 0 {
		t.Fatal("stale fallback performed no live expansion")
	}
	if len(res.Objects) != len(want) {
		t.Fatalf("stale fallback answered %d objects, want %d", len(res.Objects), len(want))
	}

	med.WaitMatViews() // background refresh restamps builtAt to the new now
	_, qt2, err := med.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if snap2 := qt2.Snapshot(); snap2.Annotations["matview.hit"] != 1 {
		t.Fatalf("post-refresh query not a hit: %v", snap2.Annotations)
	}
	if s := med.MatViewStats(); s.Stale != 1 || s.Refreshes != 2 {
		t.Fatalf("matview stats = %+v", s)
	}
}

// TestMediatorInvalidateOnePath: Mediator.Invalidate(name) is the single
// invalidation path — it reaches both the per-source answer caches and
// the dependent materialized views.
func TestMediatorInvalidateOnePath(t *testing.T) {
	cs, whois := newPaperSources(t)
	med, err := New(Config{
		Name:        "med",
		Spec:        specMS1,
		Sources:     []Source{cs, whois},
		Cache:       &CacheOptions{},
		Materialize: &MatViewOptions{Views: []MatView{{Label: "cs_person"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.Query(q); err != nil {
		t.Fatal(err)
	}
	entries := func(name string) int {
		s, ok := med.CacheStats()[name]
		if !ok {
			t.Fatalf("no cache stats for %s", name)
		}
		return s.Entries
	}
	if entries("whois") == 0 {
		t.Fatal("cold query left the whois cache empty; nothing to invalidate")
	}
	csEntries := entries("cs")

	// Invalidating whois drops its cache, leaves cs alone, and marks the
	// view (which reads whois) stale.
	if n := med.Invalidate("whois"); n != 1 {
		t.Fatalf("Invalidate(whois) marked %d views, want 1", n)
	}
	if entries("whois") != 0 {
		t.Fatal("whois cache survived Invalidate(whois)")
	}
	if entries("cs") != csEntries {
		t.Fatal("cs cache dropped by Invalidate(whois)")
	}
	_, qt, err := med.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if snap := qt.Snapshot(); snap.Annotations["matview.stale"] != 1 {
		t.Fatalf("invalidated view still serving: %v", snap.Annotations)
	}
	med.WaitMatViews()

	// Invalidate("") clears everything.
	med.Invalidate("")
	if entries("whois") != 0 || entries("cs") != 0 {
		t.Fatal("Invalidate(\"\") left cache entries behind")
	}
}

// TestMatViewExplainAnalyze: the analyzed plan of a warm contained query
// names the matscan operator, making extent serving visible in the same
// tool that shows every other operator.
func TestMatViewExplainAnalyze(t *testing.T) {
	med := newMatViewMediator(t, MatViewOptions{}, executorModes[0])
	const q = `JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`
	if _, err := med.QueryString(q); err != nil { // warm the extent
		t.Fatal(err)
	}
	out, err := med.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "matscan(") {
		t.Fatalf("ExplainAnalyze does not show the matscan:\n%s", out)
	}
	if !strings.Contains(out, "matview.hit") {
		t.Fatalf("ExplainAnalyze does not show the hit annotation:\n%s", out)
	}
}

// TestMatViewRefreshWarmsExtent: an explicit Refresh builds the extent
// ahead of traffic, so even the first query is a zero-exchange hit.
func TestMatViewRefreshWarmsExtent(t *testing.T) {
	med := newMatViewMediator(t, MatViewOptions{}, executorModes[0])
	if err := med.Refresh(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	_, qt, err := med.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	snap := qt.Snapshot()
	if snap.Annotations["matview.hit"] != 1 || snap.Annotations["matview.build"] != 0 {
		t.Fatalf("first query after Refresh not a warm hit: %v", snap.Annotations)
	}
	if len(snap.Sources) != 0 {
		t.Fatalf("warmed hit recorded source traffic: %+v", snap.Sources)
	}
}
