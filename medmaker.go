// Package medmaker is a Go implementation of MedMaker, the TSIMMIS
// mediation system of Papakonstantinou, Garcia-Molina, and Ullman (ICDE
// 1996): declaratively-specified mediators that provide integrated views
// over heterogeneous information sources.
//
// Sources export data in the Object Exchange Model (OEM) through wrappers;
// a mediator is specified in the Mediator Specification Language (MSL) as
// a set of rules defining virtual integrated objects; and queries — also
// MSL — are answered by the Mediator Specification Interpreter (MSI):
// view expansion and algebraic optimization, cost-based planning into a
// physical datamerge graph, and execution by the datamerge engine.
//
// A minimal mediator over one source:
//
//	src, _ := medmaker.NewOEMSourceFromText("people", `
//	    <person, set, {<name, 'Ann'>, <dept, 'CS'>}>`)
//	med, _ := medmaker.New(medmaker.Config{
//	    Name:    "med",
//	    Spec:    `<staff {<name N>}> :- <person {<name N> <dept 'CS'>}>@people.`,
//	    Sources: []medmaker.Source{src},
//	})
//	objs, _ := med.QueryString(`X :- X:<staff {<name N>}>@med.`)
//
// Mediators implement the Source interface themselves, so views can be
// layered: a mediator integrates wrappers and other mediators alike, as in
// the TSIMMIS architecture of the paper's Figure 1.1.
package medmaker

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"medmaker/internal/engine"
	"medmaker/internal/extfn"
	"medmaker/internal/lorel"
	"medmaker/internal/matview"
	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/plan"
	"medmaker/internal/trace"
	"medmaker/internal/veao"
	"medmaker/internal/wrapper"
)

// Re-exported core types. The aliases make the internal implementations
// part of the public API without duplication.
type (
	// Object is an OEM object <oid, label, type, value>.
	Object = oem.Object
	// OID is an OEM object identifier.
	OID = oem.OID
	// Value is an OEM value: an atomic value or a set of subobjects.
	Value = oem.Value
	// Rule is a parsed MSL rule (specification rule or query).
	Rule = msl.Rule
	// SpecProgram is a parsed MSL text: rules plus external declarations.
	SpecProgram = msl.Program
	// Source is anything a mediator can query: a wrapper or another
	// mediator.
	Source = wrapper.Source
	// Capabilities advertises the query features a source supports.
	Capabilities = wrapper.Capabilities
	// Func is an external function implementation (see the MSL "by"
	// declarations).
	Func = extfn.Func
	// PlanOptions control the cost-based optimizer.
	PlanOptions = plan.Options
	// OrderMode selects the optimizer's join-order strategy.
	OrderMode = plan.OrderMode
	// ExpandOptions control view expansion.
	ExpandOptions = veao.Options
	// Stats is the optimizer's statistics store, learned from past
	// queries.
	Stats = engine.Stats
	// CacheOptions configure the per-source answer cache (Config.Cache).
	CacheOptions = wrapper.CacheOptions
	// CacheStats is a snapshot of one source cache's counters.
	CacheStats = wrapper.CacheStats
	// PlanCacheOptions configure the compiled-plan cache (Config.PlanCache).
	PlanCacheOptions = plan.CacheOptions
	// PlanCacheStats is a snapshot of the plan cache's counters.
	PlanCacheStats = plan.CacheStats
	// BatchQuerier is the optional Source extension for answering several
	// queries in one exchange; batch-capable sources make the engine's
	// parameterized-query batching collapse round-trips.
	BatchQuerier = wrapper.BatchQuerier
	// ContextSource is the optional Source extension for queries bounded
	// by a context.Context: cancellation and deadlines propagate into the
	// source instead of merely abandoning its answer. All bundled sources
	// (including mediators themselves) implement it.
	ContextSource = wrapper.ContextSource
	// ContextBatchQuerier combines ContextSource and BatchQuerier: a whole
	// batch in one exchange, bounded by a context.
	ContextBatchQuerier = wrapper.ContextBatchQuerier
	// ExecPolicy bounds and degrades per-source work during execution: a
	// per-exchange timeout and the reaction to source failures. The zero
	// value is the paper's all-or-nothing behavior.
	ExecPolicy = engine.Policy
	// ErrorMode selects an ExecPolicy's reaction to a failing source.
	ErrorMode = engine.ErrorMode
	// SourceError is one recorded source failure in a degraded answer.
	SourceError = engine.SourceError
	// QueryResult is a query answer together with its degradation record:
	// the objects, whether any source's contribution is missing, and the
	// per-source failures behind it.
	QueryResult = engine.Result
	// QueryTrace is the structured execution record of one query: phase
	// timings (parse, expand, plan, execute), per-operator row counts and
	// wall time, and per-source exchange latency. Produced by QueryTraced
	// and ExplainAnalyze.
	QueryTrace = trace.QueryTrace
	// TraceSummary is a QueryTrace snapshot: plain data, JSON-friendly.
	TraceSummary = trace.Summary
	// MetricsRegistry is a process-wide registry of named counters and
	// latency histograms. The engine reports every source exchange into
	// DefaultMetrics(), and remote servers expose their registry for
	// scraping (see the remote package's Client.Metrics).
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's values.
	MetricsSnapshot = metrics.Snapshot
	// MatViewOptions configure the materialized-view manager
	// (Config.Materialize): which view heads to materialize and the
	// freshness policy.
	MatViewOptions = matview.Options
	// MatView selects one view head for materialization, with an
	// optional narrowing pattern and a TTL.
	MatView = matview.View
	// MatViewStats is a snapshot of the materialized-view manager's
	// counters: hits, misses, staleness fallbacks, refreshes.
	MatViewStats = matview.Stats
)

// DefaultMetrics returns the process-wide metrics registry.
func DefaultMetrics() *MetricsRegistry { return metrics.Default() }

// ExecPolicy.OnSourceError values.
const (
	// OnSourceErrorFail aborts the query on the first source failure (the
	// default).
	OnSourceErrorFail = engine.OnErrorFail
	// OnSourceErrorSkip drops a failing source for the rest of the query
	// and flags the answer Incomplete.
	OnSourceErrorSkip = engine.OnErrorSkip
	// OnSourceErrorPartial drops only the failing exchange, retrying the
	// source on later exchanges, and flags the answer Incomplete.
	OnSourceErrorPartial = engine.OnErrorPartial
)

// DefaultQueryBatch is the parameterized-query batch size used when
// Config.QueryBatch is zero.
const DefaultQueryBatch = 16

// Join-order strategies for PlanOptions.Order.
const (
	// OrderHeuristic places the patterns with the most conditions
	// outermost (the paper's heuristic).
	OrderHeuristic = plan.OrderHeuristic
	// OrderStats orders by estimated result sizes learned from past
	// queries.
	OrderStats = plan.OrderStats
	// OrderAsWritten keeps the rule's textual order.
	OrderAsWritten = plan.OrderAsWritten
	// OrderReversed inverts the heuristic (worst-case baseline).
	OrderReversed = plan.OrderReversed
	// OrderAdaptive orders by the bind-join cost model over execution
	// feedback: condition-aware cardinalities, learned join
	// selectivities, and observed source latencies. Falls back to the
	// heuristic until the store has observations.
	OrderAdaptive = plan.OrderAdaptive
)

// DefaultPlanOptions returns the optimizer defaults: heuristic order,
// condition pushdown, parameterized queries, duplicate elimination.
func DefaultPlanOptions() PlanOptions { return plan.DefaultOptions() }

// ParseOEM parses objects in the textual OEM format.
func ParseOEM(text string) ([]*Object, error) { return oem.Parse(text) }

// FormatOEM renders objects in the flat textual OEM format of the paper's
// figures.
func FormatOEM(objs ...*Object) string { return oem.Format(objs...) }

// ParseQuery parses an MSL query (a single rule).
func ParseQuery(text string) (*Rule, error) { return msl.ParseQuery(text) }

// TranslateLorel translates a LOREL-style end-user query (footnote 4 of
// the paper: "select … from … where …") into the equivalent MSL rule.
func TranslateLorel(text string) (*Rule, error) { return lorel.Translate(text) }

// ParseSpec parses an MSL mediator specification.
func ParseSpec(text string) (*SpecProgram, error) { return msl.ParseProgram(text) }

// Config describes a mediator to New.
type Config struct {
	// Name is the mediator's source name (what queries write after "@").
	Name string
	// Spec is the MSL specification text; SpecProgram takes precedence
	// when non-nil.
	Spec string
	// SpecProgram is a pre-parsed specification.
	SpecProgram *SpecProgram
	// Sources are the wrappers and mediators the specification's rules
	// refer to.
	Sources []Source
	// Functions registers external functions by name, in addition to the
	// standard library (name_to_lnfn, lnfn_to_name, normalize_author, …).
	Functions map[string]Func
	// Plan overrides the optimizer options; zero value means defaults
	// (heuristic order, pushdown, parameterized queries, dup-elim).
	Plan *PlanOptions
	// Expand overrides view-expansion options.
	Expand ExpandOptions
	// Trace, when set, receives a node-by-node account of every
	// execution: the physical graph and the binding tables flowing
	// through it. Tracing forces sequential execution.
	Trace io.Writer
	// Parallelism is the engine's worker count: independent subtrees
	// evaluate concurrently, parameterized-query tuples fan across that
	// many workers, and local operators (extraction, joins, dedup,
	// external predicates) split their inputs into morsels executed on a
	// pool of that size. Sources must tolerate concurrent queries (all
	// bundled wrappers do) and external functions must be pure. Results
	// are identical to sequential execution, including order. 0 (the
	// default) means runtime.GOMAXPROCS(0); use 1 (or any value below 1)
	// for strictly sequential execution.
	Parallelism int
	// QueryBatch bounds how many deduplicated parameterized queries the
	// engine sends to a source per exchange: a query node's input tuples
	// are deduplicated, and the distinct instantiated queries ship in
	// groups of up to QueryBatch (one per exchange for sources without
	// BatchQuerier support). 0 means DefaultQueryBatch; 1 restores the
	// paper's one-query-per-tuple behavior.
	QueryBatch int
	// Pipeline streams row batches between plan operators through
	// channels instead of materializing every intermediate table,
	// overlapping source waits across the graph. It engages only when
	// Parallelism > 1 and tracing is off; results are structurally
	// identical to sequential execution.
	Pipeline bool
	// Cache, when non-nil, puts an LRU answer cache in front of every
	// source, keyed by normalized query text, with the given size and TTL.
	// Hit rates feed the optimizer's cost model through the statistics
	// store. Use Mediator.InvalidateCaches when a source changes.
	Cache *CacheOptions
	// PlanCache, when non-nil, caches compiled query plans (the expanded
	// program plus the physical datamerge graph) in a bounded LRU keyed by
	// the query's canonical text: variables alpha-renamed and conjunct
	// order canonicalized, so the repeated query templates a serving tier
	// sees compile once and then skip parse→expand→plan entirely.
	// Compilation is singleflighted — N cold clients asking the same query
	// cost one compile — and cached plans are dropped when AddSource
	// replaces a source or Invalidate names a dependency. Off (nil) by
	// default: replanning every call lets the optimizer react to freshly
	// learned statistics, which some workloads (and benchmarks) rely on.
	PlanCache *PlanCacheOptions
	// Materialize, when non-nil, enables the materialized-view manager:
	// the listed view heads are materialized into local extents (built by
	// running the live pipeline once, on first demand or via Refresh), and
	// queries whose mediator conjuncts are contained in a fresh extent are
	// served from it with zero source exchanges. Everything else — no
	// covering view, TTL expiry, invalidation, a failed build — falls back
	// to live expansion transparently. See Mediator.Refresh and
	// Mediator.Invalidate for freshness control.
	Materialize *MatViewOptions
	// Policy is the default execution policy for every query: a per-source
	// exchange timeout and the failure reaction (fail the query, skip the
	// source, or skip the exchange). QueryPolicy overrides it per call.
	// The zero value reproduces the paper's all-or-nothing behavior.
	Policy ExecPolicy
}

// Mediator is a declaratively-specified integrated view over a set of
// sources. It is safe for concurrent queries, and is itself a Source.
type Mediator struct {
	name     string
	spec     *msl.Program
	sources  *wrapper.Registry
	extfns   *extfn.Table
	expander *veao.Expander
	planOpts plan.Options
	stats    *engine.Stats
	gen      *oem.IDGen
	trace    io.Writer
	parallel int
	batch    int
	pipeline bool
	policy   ExecPolicy
	cacheCfg *wrapper.CacheOptions
	cacheMu  sync.Mutex
	caches   []*wrapper.Cache
	plans    *plan.Cache
	replanWG sync.WaitGroup // in-flight background plan revalidations
	matviews *matview.Manager
	// fused marks specifications whose heads carry skolem object-ids:
	// queries then evaluate against the materialized, fused view (see
	// Query), because a condition may only hold on the fusion of
	// fragments produced by different rules.
	fused bool

	// notifyMu guards listeners, the callbacks registered through
	// OnInvalidate by consumers holding state derived from this mediator
	// (a tier-1 mediator this one is registered in as a source).
	notifyMu  sync.Mutex
	listeners []func()

	mu sync.Mutex // serializes access to the trace writer
}

var (
	_ Source                       = (*Mediator)(nil)
	_ ContextSource                = (*Mediator)(nil)
	_ BatchQuerier                 = (*Mediator)(nil)
	_ ContextBatchQuerier          = (*Mediator)(nil)
	_ wrapper.InvalidationNotifier = (*Mediator)(nil)
)

// New builds a mediator from its specification, resolving external
// declarations against the standard library plus cfg.Functions.
func New(cfg Config) (*Mediator, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("medmaker: mediator needs a name")
	}
	spec := cfg.SpecProgram
	if spec == nil {
		parsed, err := msl.ParseProgram(cfg.Spec)
		if err != nil {
			return nil, err
		}
		spec = parsed
	}
	if len(spec.Rules) == 0 {
		return nil, fmt.Errorf("medmaker: specification of %q has no rules", cfg.Name)
	}
	reg := extfn.NewRegistry()
	for name, fn := range cfg.Functions {
		reg.Register(name, fn)
	}
	table, err := extfn.NewTable(reg, spec.Decls)
	if err != nil {
		return nil, err
	}
	par := cfg.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par < 1 {
		par = 1
	}
	opts := plan.DefaultOptions()
	if cfg.Plan != nil {
		opts = *cfg.Plan
	}
	if opts.Parallelism == 0 {
		// Let the optimizer's local-cost model see the executor it plans
		// for (explicit PlanOptions may still pin a different degree).
		opts.Parallelism = par
	}
	batch := cfg.QueryBatch
	if batch == 0 {
		batch = DefaultQueryBatch
	}
	m := &Mediator{
		name:     cfg.Name,
		spec:     spec,
		sources:  wrapper.NewRegistry(),
		extfns:   table,
		expander: veao.NewExpander(spec, cfg.Name, cfg.Expand),
		planOpts: opts,
		stats:    engine.NewStats(),
		gen:      oem.NewIDGen(cfg.Name),
		trace:    cfg.Trace,
		parallel: par,
		batch:    batch,
		pipeline: cfg.Pipeline,
		policy:   cfg.Policy,
		fused:    specHasSkolems(spec),
	}
	if cfg.Cache != nil {
		cacheCfg := *cfg.Cache
		m.cacheCfg = &cacheCfg
	}
	if cfg.PlanCache != nil {
		// Before the AddSource loop: AddSource invalidates plans by name.
		m.plans = plan.NewCache(*cfg.PlanCache)
	}
	for _, src := range cfg.Sources {
		m.AddSource(src)
	}
	if err := validateSpec(cfg.Name, spec, table, m.sources); err != nil {
		return nil, err
	}
	if cfg.Materialize != nil {
		mgr, err := matview.NewManager(cfg.Name, spec, *cfg.Materialize, m.buildView)
		if err != nil {
			return nil, err
		}
		mgr.SetDeltaFunc(m.buildViewDelta)
		m.matviews = mgr
	}
	return m, nil
}

// buildView materializes one view extent for the matview manager by
// answering its fetch query through the live pipeline (untraced: the
// build's exchanges belong to no particular query).
func (m *Mediator) buildView(ctx context.Context, fetch *Rule) ([]*Object, bool, error) {
	res, err := m.queryLive(ctx, fetch, m.policy, nil)
	if err != nil {
		return nil, false, err
	}
	return res.Objects, res.Incomplete, nil
}

// buildViewDelta evaluates the incremental effect of an insert into
// source on one materialized view — the delta rule of semi-naive
// evaluation. The view's fetch query is expanded as usual; rules not
// reading source are dropped (the insert cannot change their answers);
// the surviving rules are planned and executed with source replaced by a
// facade holding only the inserted objects, every other source live. The
// sources have already been mutated, so "new data ⋈ old data" and "new
// data ⋈ new data" derivations both surface, and the result is exactly
// the set of view objects the insert adds (up to structural duplicates,
// which the matview manager filters against the extent).
//
// ok=false reports a specification shape the delta rule is not sound
// for, making the manager fall back to a full rebuild: fused (skolem)
// specs, rules that survive expansion with mediator self-references,
// negated conjuncts (non-monotone: an insert can retract answers), and
// rules reading source more than once (one facade substitution would
// miss new⋈old combinations on the other occurrence).
func (m *Mediator) buildViewDelta(ctx context.Context, fetch *Rule, source string, inserted []*Object) ([]*Object, bool, bool, error) {
	if m.fused {
		return nil, false, false, nil
	}
	logical, err := m.ExpandContext(ctx, fetch)
	if err != nil {
		return nil, false, false, err
	}
	var delta []*msl.Rule
	for _, r := range logical.Rules {
		reads := 0
		for _, c := range r.Tail {
			pc, ok := c.(*msl.PatternConjunct)
			if !ok {
				continue
			}
			if pc.Source == "" || pc.Source == m.name {
				return nil, false, false, nil // unexpanded self-reference
			}
			if pc.Negated {
				return nil, false, false, nil // non-monotone
			}
			if pc.Source == source {
				reads++
			}
		}
		if reads > 1 {
			return nil, false, false, nil // source self-join
		}
		if reads == 1 {
			delta = append(delta, r)
		}
	}
	if len(delta) == 0 {
		// No rule reads the mutated source: the insert cannot add view
		// objects, and an empty delta is the correct answer.
		return nil, false, true, nil
	}
	facade, err := oemstore.FromObjects(source, inserted...)
	if err != nil {
		return nil, false, false, err
	}
	reg := wrapper.NewRegistry()
	for _, name := range m.sources.Names() {
		if name == source {
			continue
		}
		if s, ok := m.sources.Lookup(name); ok {
			reg.Add(s)
		}
	}
	reg.Add(facade)
	planner := plan.New(reg, m.extfns, m.stats, m.planOpts)
	p, err := planner.BuildContext(ctx, &veao.Program{Rules: delta, Decls: m.spec.Decls})
	if err != nil {
		return nil, false, false, err
	}
	ex := &engine.Executor{
		Sources:     reg,
		Extfn:       m.extfns,
		IDGen:       m.gen,
		Stats:       m.stats,
		Parallelism: m.parallel,
		QueryBatch:  m.batch,
		Pipeline:    m.pipeline,
		Policy:      m.policy,
	}
	res, err := ex.RunResult(ctx, p.Root)
	if err != nil {
		return nil, false, false, err
	}
	return res.Objects, res.Incomplete, true, nil
}

// applyDelta reacts to one source mutation reported through a change
// feed: the mutated source's answer-cache entries are dropped (counted
// under cache.invalidated), the materialized views depending on it are
// delta-maintained (or marked stale when only a rebuild is sound), and
// this mediator's own invalidation listeners fire so consumers of a
// higher tier conservatively drop their derived state. Cached plans are
// untouched: plans resolve sources by name at execution time and are
// data-independent.
func (m *Mediator) applyDelta(d wrapper.Delta) {
	dropped := 0
	m.cacheMu.Lock()
	for _, c := range m.caches {
		dropped += c.Invalidate(d.Source)
	}
	m.cacheMu.Unlock()
	metrics.Default().Counter("cache.invalidated").Add(int64(dropped))
	if m.matviews != nil {
		m.matviews.ApplyDelta(context.Background(), d.Source, d.Inserted, d.Deleted)
	}
	m.notifyListeners()
}

// validateSpec rejects specifications with statically-detectable faults:
// unsafe rules (head variables never bound in the tail), undeclared
// predicates, and references to sources that are neither registered nor
// the mediator itself.
func validateSpec(name string, spec *msl.Program, table *extfn.Table, sources *wrapper.Registry) error {
	for ri, r := range spec.Rules {
		tailVars := map[string]bool{}
		for _, c := range r.Tail {
			// Negated conjuncts bind nothing, so they cannot make a head
			// variable safe.
			if pc, ok := c.(*msl.PatternConjunct); ok && pc.Negated {
				continue
			}
			tmp := &msl.Rule{Tail: []msl.Conjunct{c}}
			for _, v := range tmp.Vars() {
				tailVars[v] = true
			}
		}
		for _, hv := range r.HeadVars() {
			if !tailVars[hv] {
				return fmt.Errorf("medmaker: %s: rule %d is unsafe: head variable %s never appears in the tail",
					name, ri+1, hv)
			}
		}
		for _, c := range r.Tail {
			switch t := c.(type) {
			case *msl.PredicateConjunct:
				if !table.Knows(t.Name) {
					return fmt.Errorf("medmaker: %s: rule %d uses undeclared predicate %q",
						name, ri+1, t.Name)
				}
			case *msl.PatternConjunct:
				if t.Source == "" || t.Source == name {
					continue // a reference to this mediator's own view
				}
				if _, ok := sources.Lookup(t.Source); !ok {
					return fmt.Errorf("medmaker: %s: rule %d references unknown source %q (registered: %v)",
						name, ri+1, t.Source, sources.Names())
				}
			}
		}
	}
	return nil
}

// Name implements Source.
func (m *Mediator) Name() string { return m.name }

// Capabilities implements Source. Mediators evaluate conditions and rest
// constraints by pushing them through view expansion; wildcard searches
// over virtual objects are not supported (query the sources directly).
func (m *Mediator) Capabilities() Capabilities {
	return Capabilities{ValueConditions: true, RestConstraints: true, Wildcards: false, MultiPattern: true}
}

// Query answers an MSL query rule; it implements Source, which is what
// lets mediators serve as sources of other mediators. The returned
// objects are materialized results with mediator-issued object-ids.
//
// For specifications using semantic object-ids, queries are answered
// against the materialized fused view: a condition may only hold on the
// fusion of fragments derived by different rules (e.g. office from one
// source and salary from another under one person(N)), so per-rule
// expansion would silently miss answers. Non-fusion specifications use
// ordinary view expansion.
func (m *Mediator) Query(q *Rule) ([]*Object, error) {
	return m.QueryContext(context.Background(), q)
}

// QueryContext is Query bounded by ctx; it implements ContextSource.
// Cancellation or an expired deadline aborts the whole answer path —
// view expansion, planning, and execution, including in-flight source
// exchanges — and surfaces as ctx.Err(). Every goroutine the engine
// started has exited by the time QueryContext returns.
func (m *Mediator) QueryContext(ctx context.Context, q *Rule) ([]*Object, error) {
	res, err := m.QueryPolicy(ctx, q, m.policy)
	if err != nil {
		return nil, err
	}
	return res.Objects, nil
}

// QueryPolicy is QueryContext under an explicit execution policy,
// returning the full QueryResult: the objects plus the degradation
// record. With a skipping policy a failed source no longer aborts the
// query; the healthy sources' contributions come back with
// QueryResult.Incomplete set and the failures listed, so callers can
// distinguish a full answer from a lower bound.
func (m *Mediator) QueryPolicy(ctx context.Context, q *Rule, policy ExecPolicy) (*QueryResult, error) {
	return m.queryTraced(ctx, q, policy, nil)
}

// QueryTraced answers q like QueryContext while recording a structured
// execution trace: phase timings, per-operator actual-vs-estimated
// cardinalities, source exchanges, and cache traffic. The trace is
// complete (ended) when QueryTraced returns, including on error — render
// it with QueryTrace.Render or snapshot it with QueryTrace.Snapshot.
// Tracing does not force sequential execution; parallel and pipelined
// runs merge their records race-free.
func (m *Mediator) QueryTraced(ctx context.Context, q *Rule) (*QueryResult, *QueryTrace, error) {
	qt := trace.New(q.String())
	res, err := m.queryTraced(ctx, q, m.policy, qt)
	qt.End()
	return res, qt, err
}

// queryTraced is the single answer path behind QueryPolicy and
// QueryTraced; qt may be nil (every trace hook is a no-op then). With
// materialization enabled it first offers the query to the matview
// manager; anything it declines — no covering view, staleness, a build
// failure — runs live.
func (m *Mediator) queryTraced(ctx context.Context, q *Rule, policy ExecPolicy, qt *trace.QueryTrace) (*QueryResult, error) {
	ctx = trace.NewContext(ctx, qt)
	if m.matviews != nil {
		res, served, err := m.queryMatView(ctx, q, policy, qt)
		if err != nil {
			return nil, err
		}
		if served {
			return res, nil
		}
	}
	return m.queryLive(ctx, q, policy, qt)
}

// queryLive answers q through the ordinary pipeline: expansion against
// the specification, planning, execution over the real sources.
func (m *Mediator) queryLive(ctx context.Context, q *Rule, policy ExecPolicy, qt *trace.QueryTrace) (*QueryResult, error) {
	ctx = trace.NewContext(ctx, qt)
	if m.fused || m.needsMaterializedView(q) {
		return m.queryFusedView(ctx, policy, q, qt)
	}
	physical, err := m.planForQuery(ctx, q, qt)
	if err != nil {
		return nil, err
	}
	qt.Phase(trace.PhaseExecute)
	return m.executeResult(ctx, policy, physical, qt)
}

// planForQuery produces the physical plan for q, through the plan cache
// when Config.PlanCache is set. Cached plans are immutable operator
// descriptions (all run state lives in the engine's per-run state) and
// resolve their sources by name at execution time, so one plan serves any
// number of concurrent queries and survives AddSource data refreshes that
// keep the name and capabilities. A hit is annotated "cached-plan" on the
// trace, with the expand phase open but empty and no plan phase at all —
// the compile cost a warm trace shows is ≈ 0.
//
// A hit also runs the drift check: when the statistics learned since the
// plan was compiled diverge from the estimates baked into it, the entry
// is replanned in the background (singleflighted per key) while the
// current plan keeps serving — so a serving tier's cached plans follow
// the statistics instead of freezing the first order ever picked.
func (m *Mediator) planForQuery(ctx context.Context, q *Rule, qt *trace.QueryTrace) (*plan.Plan, error) {
	if m.plans == nil {
		physical, _, err := m.planPhased(ctx, q, qt)
		return physical, err
	}
	qt.Phase(trace.PhaseExpand)
	key := plan.CacheKey(q)
	compiled, hit, err := m.plans.GetOrCompile(ctx, key, func(ctx context.Context) (*plan.Compiled, error) {
		// Inlined compilePlan: the expand phase is already open above, and
		// reopening it here would split the trace's phase partition.
		return m.compilePlan(ctx, q, qt)
	})
	if err != nil {
		return nil, err
	}
	if hit {
		qt.Annotate("cached-plan", 1)
		m.maybeReplan(key, q, compiled, qt)
	}
	return compiled.Plan, nil
}

// compilePlan runs expansion and planning for q and packages the result
// for the plan cache, recording the statistics generation the plan was
// built under. qt may be nil; when set, the caller has opened the expand
// phase already. The generation is read before compilation, so statistics
// arriving mid-compile register as drift on the next hit rather than
// being missed.
func (m *Mediator) compilePlan(ctx context.Context, q *Rule, qt *trace.QueryTrace) (*plan.Compiled, error) {
	gen := m.stats.Generation()
	logical, err := m.ExpandContext(ctx, q)
	if err != nil {
		return nil, err
	}
	qt.Phase(trace.PhasePlan)
	planner := plan.New(m.sources, m.extfns, m.stats, m.planOpts)
	physical, err := planner.BuildContext(ctx, logical)
	if err != nil {
		return nil, err
	}
	deps, all := m.planDeps(q, logical)
	return &plan.Compiled{Plan: physical, Program: logical, Deps: deps, DependsOnAll: all, StatsGen: gen}, nil
}

// maybeReplan revalidates a hit plan against the current statistics: if
// the store drifted past plan.DriftRatio and no refresh of this key is
// already running, the query is recompiled in the background and the
// cache entry replaced on success. The hit keeps serving the old plan —
// a drifted plan is correct, just possibly slow — so the foreground
// query never waits. The trace notes the trigger as "plan.drift".
func (m *Mediator) maybeReplan(key string, q *Rule, compiled *plan.Compiled, qt *trace.QueryTrace) {
	if !plan.Drifted(compiled, m.stats, 0) {
		return
	}
	if !m.plans.BeginRefresh(key) {
		return
	}
	qt.Annotate("plan.drift", 1)
	q = q.Clone() // the caller's rule must not escape into the goroutine
	m.replanWG.Add(1)
	go func() {
		defer m.replanWG.Done()
		fresh, err := m.compilePlan(context.Background(), q, nil)
		if err != nil {
			fresh = nil // clear the claim; a later drift check retries
		}
		m.plans.CompleteRefresh(key, fresh)
	}()
}

// WaitReplans blocks until every background plan revalidation started by
// the drift check has finished — deterministic shutdown and tests. A
// no-op without Config.PlanCache.
func (m *Mediator) WaitReplans() { m.replanWG.Wait() }

// planDeps collects the names whose invalidation must drop q's cached
// plan: every source the expanded program reads, plus the view labels the
// original query asked this mediator for (so a matview-related Invalidate
// of a label also retires plans compiled for queries over it). A variable
// view label — or any mediator-directed conjunct surviving expansion —
// defeats static analysis and marks the plan dependent on everything.
func (m *Mediator) planDeps(q *Rule, logical *veao.Program) (deps []string, all bool) {
	seen := map[string]bool{}
	for _, r := range logical.Rules {
		for _, c := range r.Tail {
			pc, ok := c.(*msl.PatternConjunct)
			if !ok {
				continue
			}
			if pc.Source == "" || pc.Source == m.name {
				return nil, true
			}
			seen[pc.Source] = true
		}
	}
	for _, c := range q.Tail {
		pc, ok := c.(*msl.PatternConjunct)
		if !ok || (pc.Source != "" && pc.Source != m.name) {
			continue
		}
		label := pc.Pattern.LabelName()
		if label == "" {
			return nil, true
		}
		seen[label] = true
	}
	deps = make([]string, 0, len(seen))
	for n := range seen {
		deps = append(deps, n)
	}
	return deps, false
}

// queryMatView offers q to the materialized-view manager and, on a hit,
// answers it from the extents with zero source exchanges. served is
// false whenever the live path should run instead: no covering fresh
// extent, or any failure that isn't the caller's context ending —
// materialization is an optimization and must never make a query fail
// that live expansion could answer.
func (m *Mediator) queryMatView(ctx context.Context, q *Rule, policy ExecPolicy, qt *trace.QueryTrace) (res *QueryResult, served bool, err error) {
	qt.Phase(trace.PhaseExpand)
	sv, outcome, serr := m.matviews.Serve(ctx, q)
	if serr != nil {
		if ctx.Err() != nil {
			return nil, false, serr
		}
		qt.Annotate("matview.error", 1)
		return nil, false, nil
	}
	switch outcome {
	case matview.Miss:
		qt.Annotate("matview.miss", 1)
		return nil, false, nil
	case matview.Stale:
		qt.Annotate("matview.stale", 1)
		return nil, false, nil
	}
	qt.Annotate("matview.hit", 1)
	if sv.Built {
		qt.Annotate("matview.build", 1)
	}

	// Plan the rewritten query over a registry extended with the extent
	// facades, so the optimizer prices the extents like any other source.
	qt.Phase(trace.PhasePlan)
	reg := wrapper.NewRegistry()
	for _, name := range m.sources.Names() {
		if s, ok := m.sources.Lookup(name); ok {
			reg.Add(s)
		}
	}
	extents := make(map[string]engine.MatExtent, len(sv.Extents))
	for name, ext := range sv.Extents {
		reg.Add(ext.Source)
		extents[name] = engine.MatExtent{View: ext.View, Objs: ext.Objs}
	}
	planner := plan.New(reg, m.extfns, m.stats, m.planOpts)
	p, perr := planner.BuildContext(ctx, &veao.Program{Rules: []*msl.Rule{sv.Query}, Decls: m.spec.Decls})
	if perr != nil {
		if ctx.Err() != nil {
			return nil, false, perr
		}
		qt.Annotate("matview.error", 1)
		return nil, false, nil
	}

	// Swap the extent query nodes for in-memory scans: same semantics,
	// zero exchanges.
	root := engine.SubstituteMatScan(p.Root, extents)
	qt.Phase(trace.PhaseExecute)
	ex := &engine.Executor{
		Sources:     reg,
		Extfn:       m.extfns,
		IDGen:       m.gen,
		Stats:       m.stats,
		Recorder:    qt,
		Parallelism: m.parallel,
		QueryBatch:  m.batch,
		Pipeline:    m.pipeline,
		Policy:      policy,
	}
	if m.trace != nil {
		m.mu.Lock()
		defer m.mu.Unlock()
		ex.Trace = m.trace
	}
	res, rerr := ex.RunResult(ctx, root)
	if rerr != nil {
		return nil, false, rerr
	}
	// An extent built from a degraded (skipping-policy) run is a lower
	// bound; answers served from it are too.
	res.Incomplete = res.Incomplete || sv.Incomplete
	return res, true, nil
}

// needsMaterializedView reports query forms that per-rule expansion
// cannot answer and the materialized-view strategy can:
//
//   - a negated condition on this mediator's own view (an object is
//     absent from the view only if *no* rule derives it);
//   - a predicate over a rest variable of a view condition (the rest of
//     a virtual object only exists at runtime, after construction).
func (m *Mediator) needsMaterializedView(q *Rule) bool {
	viewRests := map[string]bool{}
	for _, c := range q.Tail {
		pc, ok := c.(*msl.PatternConjunct)
		if !ok || (pc.Source != "" && pc.Source != m.name) {
			continue
		}
		if pc.Negated {
			return true
		}
		collectRestVars(pc.Pattern, viewRests)
	}
	if len(viewRests) == 0 {
		return false
	}
	for _, c := range q.Tail {
		if pr, ok := c.(*msl.PredicateConjunct); ok {
			for _, a := range pr.Args {
				if v, isVar := a.(*msl.Var); isVar && viewRests[v.Name] {
					return true
				}
			}
		}
	}
	return false
}

func collectRestVars(p *msl.ObjectPattern, out map[string]bool) {
	sp, ok := p.Value.(*msl.SetPattern)
	if !ok {
		return
	}
	if sp.Rest != nil {
		out[sp.Rest.Name] = true
	}
	for _, e := range sp.Elems {
		if ep, isPat := e.(*msl.ObjectPattern); isPat {
			collectRestVars(ep, out)
		}
	}
	for _, rc := range sp.RestConstraints {
		collectRestVars(rc, out)
	}
}

// fusedViewSource is the ephemeral source name the fused-view strategy
// registers the materialized view under.
const fusedViewSource = "_fusedview"

// queryFusedView materializes the whole fused view, then evaluates the
// query against it as if it were a source, so conditions see the fused
// objects. Pass-through source conjuncts and predicates still work: the
// rewritten query is planned and executed by the ordinary machinery over
// a registry extended with the view.
func (m *Mediator) queryFusedView(ctx context.Context, policy ExecPolicy, q *Rule, qt *trace.QueryTrace) (*QueryResult, error) {
	qt.Annotate("fused_view", 1)
	// 1. Materialize: fetch every view object through normal expansion
	// (a bare label-variable pattern matches every rule head), fused and
	// deduplicated by the plan's FuseNode.
	fetch := &msl.Rule{
		Head: []msl.HeadTerm{&msl.Var{Name: "V"}},
		Tail: []msl.Conjunct{&msl.PatternConjunct{
			ObjVar:  &msl.Var{Name: "V"},
			Pattern: &msl.ObjectPattern{Label: &msl.Var{Name: "FetchLabel"}},
			Source:  m.name,
		}},
	}
	physical, _, err := m.planPhased(ctx, fetch, qt)
	if err != nil {
		return nil, err
	}
	qt.Phase(trace.PhaseExecute)
	viewRes, err := m.executeResult(ctx, policy, physical, qt)
	if err != nil {
		return nil, err
	}
	view := viewRes.Objects

	// 2. Rewrite the query: mediator conjuncts now target the view.
	rewritten := q.Clone()
	for _, c := range rewritten.Tail {
		if pc, ok := c.(*msl.PatternConjunct); ok && (pc.Source == "" || pc.Source == m.name) {
			pc.Source = fusedViewSource
		}
	}

	// 3. Plan and execute over a registry extended with the view.
	viewSrc, err := oemstore.FromObjects(fusedViewSource, view...)
	if err != nil {
		return nil, err
	}
	reg := wrapper.NewRegistry()
	for _, name := range m.sources.Names() {
		if s, ok := m.sources.Lookup(name); ok {
			reg.Add(s)
		}
	}
	reg.Add(viewSrc)
	qt.Phase(trace.PhasePlan)
	planner := plan.New(reg, m.extfns, m.stats, m.planOpts)
	finalPlan, err := planner.BuildContext(ctx, &veao.Program{Rules: []*msl.Rule{rewritten}, Decls: m.spec.Decls})
	if err != nil {
		return nil, err
	}
	qt.Phase(trace.PhaseExecute)
	ex := &engine.Executor{
		Sources:     reg,
		Extfn:       m.extfns,
		IDGen:       m.gen,
		Stats:       m.stats,
		Recorder:    qt,
		Parallelism: m.parallel,
		QueryBatch:  m.batch,
		Pipeline:    m.pipeline,
		Policy:      policy,
	}
	if m.trace != nil {
		m.mu.Lock()
		defer m.mu.Unlock()
		ex.Trace = m.trace
	}
	res, err := ex.RunResult(ctx, finalPlan.Root)
	if err != nil {
		return nil, err
	}
	// Degradation from the materialization phase carries into the final
	// answer: if a source dropped out while building the view, conditions
	// evaluated against that view are a lower bound too.
	res.Incomplete = res.Incomplete || viewRes.Incomplete
	res.SourceErrors = append(append([]*SourceError(nil), viewRes.SourceErrors...), res.SourceErrors...)
	return res, nil
}

// specHasSkolems reports whether any rule head derives its object-id from
// a skolem term.
func specHasSkolems(spec *msl.Program) bool {
	for _, r := range spec.Rules {
		for _, h := range r.Head {
			if op, ok := h.(*msl.ObjectPattern); ok {
				if _, isSkolem := op.OID.(*msl.Skolem); isSkolem {
					return true
				}
			}
		}
	}
	return false
}

// QueryString parses and answers an MSL query given as text.
func (m *Mediator) QueryString(q string) ([]*Object, error) {
	return m.QueryStringContext(context.Background(), q)
}

// QueryStringContext is QueryString bounded by ctx (see QueryContext).
func (m *Mediator) QueryStringContext(ctx context.Context, q string) ([]*Object, error) {
	rule, err := msl.ParseQuery(q)
	if err != nil {
		return nil, err
	}
	return m.QueryContext(ctx, rule)
}

// QueryBatch implements BatchQuerier by answering the queries one by one
// in-process — a mediator's exchanges with its own sources already batch,
// so the interface exists for symmetry when mediators are layered.
func (m *Mediator) QueryBatch(qs []*Rule) ([][]*Object, error) {
	return wrapper.EachQuery(m, qs)
}

// QueryBatchContext implements ContextBatchQuerier (see QueryBatch).
func (m *Mediator) QueryBatchContext(ctx context.Context, qs []*Rule) ([][]*Object, error) {
	return wrapper.EachQueryContext(ctx, m, qs)
}

// QueryLorel answers a LOREL-style end-user query ("select … from …
// where …") by translating it to MSL. From-items without an explicit
// source ("from person X") range over this mediator's own view.
// Aggregate select lists (count, sum, min, max, avg) fold the base
// query's distinct bindings into a single <result {…}> object.
func (m *Mediator) QueryLorel(q string) ([]*Object, error) {
	return m.QueryLorelContext(context.Background(), q)
}

// QueryLorelContext is QueryLorel bounded by ctx (see QueryContext).
func (m *Mediator) QueryLorelContext(ctx context.Context, q string) ([]*Object, error) {
	translated, err := lorel.TranslateQuery(q)
	if err != nil {
		return nil, err
	}
	if translated.Rule != nil {
		return m.QueryContext(ctx, translated.Rule)
	}
	result, err := translated.Fold(func(r *Rule) ([]*Object, error) {
		return m.QueryContext(ctx, r)
	})
	if err != nil {
		return nil, err
	}
	oem.AssignOIDs(result, m.gen)
	return []*Object{result}, nil
}

// Expand runs only the View Expander & Algebraic Optimizer, returning the
// logical datamerge program for a query.
func (m *Mediator) Expand(q *Rule) (*veao.Program, error) {
	return m.expander.Expand(q)
}

// ExpandContext is Expand bounded by ctx: expansion of adversarial
// specifications can blow up combinatorially, so the rewriting itself
// honors cancellation.
func (m *Mediator) ExpandContext(ctx context.Context, q *Rule) (*veao.Program, error) {
	return m.expander.ExpandContext(ctx, q)
}

// Plan runs view expansion and cost-based optimization, returning the
// physical datamerge graph and the logical program it came from.
func (m *Mediator) Plan(q *Rule) (*plan.Plan, *veao.Program, error) {
	return m.PlanContext(context.Background(), q)
}

// PlanContext is Plan bounded by ctx, which covers both expansion and
// per-rule plan construction.
func (m *Mediator) PlanContext(ctx context.Context, q *Rule) (*plan.Plan, *veao.Program, error) {
	return m.planPhased(ctx, q, nil)
}

// planPhased is PlanContext with the expansion and planning steps
// reported as trace phases; qt may be nil.
func (m *Mediator) planPhased(ctx context.Context, q *Rule, qt *trace.QueryTrace) (*plan.Plan, *veao.Program, error) {
	qt.Phase(trace.PhaseExpand)
	logical, err := m.ExpandContext(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	qt.Phase(trace.PhasePlan)
	planner := plan.New(m.sources, m.extfns, m.stats, m.planOpts)
	physical, err := planner.BuildContext(ctx, logical)
	if err != nil {
		return nil, nil, err
	}
	return physical, logical, nil
}

// Execute runs a previously-built physical plan through the datamerge
// engine and returns the constructed result objects.
func (m *Mediator) Execute(p *plan.Plan) ([]*Object, error) {
	return m.ExecuteContext(context.Background(), p)
}

// ExecuteContext is Execute bounded by ctx (see QueryContext for the
// cancellation guarantees).
func (m *Mediator) ExecuteContext(ctx context.Context, p *plan.Plan) ([]*Object, error) {
	res, err := m.executeResult(ctx, m.policy, p, nil)
	if err != nil {
		return nil, err
	}
	return res.Objects, nil
}

// executeResult runs a physical plan under ctx and policy, returning the
// answer with its degradation record. A non-nil qt receives the run's
// structured execution record.
func (m *Mediator) executeResult(ctx context.Context, policy ExecPolicy, p *plan.Plan, qt *trace.QueryTrace) (*QueryResult, error) {
	ex := &engine.Executor{
		Sources:     m.sources,
		Extfn:       m.extfns,
		IDGen:       m.gen,
		Stats:       m.stats,
		Recorder:    qt,
		Parallelism: m.parallel,
		QueryBatch:  m.batch,
		Pipeline:    m.pipeline,
		Policy:      policy,
	}
	if m.trace != nil {
		m.mu.Lock()
		defer m.mu.Unlock()
		ex.Trace = m.trace
	}
	return ex.RunResult(ctx, p.Root)
}

// Explain returns a human-readable account of how the mediator would
// answer the MSL query text: the logical datamerge program and the
// physical datamerge graph.
func (m *Mediator) Explain(q string) (string, error) {
	rule, err := msl.ParseQuery(q)
	if err != nil {
		return "", err
	}
	physical, logical, err := m.Plan(rule)
	if err != nil {
		return "", err
	}
	var sb writerBuilder
	if m.fused {
		sb.WriteString("-- note: this specification uses semantic object-ids; Query materializes\n")
		sb.WriteString("-- the fused view first and evaluates the query against it. The plan below\n")
		sb.WriteString("-- is the per-rule expansion used to materialize fragments.\n")
	}
	sb.WriteString("-- logical datamerge program --\n")
	sb.WriteString(logical.String())
	sb.WriteString("-- physical datamerge graph --\n")
	physical.Print(&sb)
	return sb.String(), nil
}

// ExplainAnalyze answers the MSL query text and returns the executed
// plan annotated with what actually happened: per-operator actual row
// counts against the optimizer's estimates, source exchanges and their
// latency distributions, cache traffic, and phase timings that sum to
// the total wall time. The query really runs (sources are queried);
// use Explain for a static plan.
func (m *Mediator) ExplainAnalyze(q string) (string, error) {
	return m.ExplainAnalyzeContext(context.Background(), q)
}

// ExplainAnalyzeContext is ExplainAnalyze bounded by ctx.
func (m *Mediator) ExplainAnalyzeContext(ctx context.Context, q string) (string, error) {
	qt := trace.New(q)
	qt.Phase(trace.PhaseParse)
	rule, err := msl.ParseQuery(q)
	if err != nil {
		return "", err
	}
	res, err := m.queryTraced(ctx, rule, m.policy, qt)
	qt.End()
	if err != nil {
		return "", err
	}
	var sb writerBuilder
	qt.Render(&sb)
	fmt.Fprintf(&sb, "-- %d result objects --\n", len(res.Objects))
	return sb.String(), nil
}

// AddSource registers or replaces a source at runtime. Mediators serve
// autonomous, changing environments: when a source is upgraded or moves
// (e.g. from in-process to remote), swap it in under the same name and
// the unchanged specification keeps working. Queries already executing
// finish against the source they resolved. With Config.Cache set the
// source is registered behind a fresh answer cache.
func (m *Mediator) AddSource(src Source) {
	// Subscribe to the raw source (before any cache wrapping) so a
	// source that reports invalidation — a mediator serving a lower tier,
	// a partitioned source relaying its members — drops this mediator's
	// derived state: its answer cache for that source, plan-cache entries
	// and materialized views depending on it. This is what keeps a
	// two-tier deployment's tier-1 honest when Invalidate is called on
	// the tier-2 mediator.
	if notifier, ok := src.(wrapper.InvalidationNotifier); ok {
		name := src.Name()
		notifier.OnInvalidate(func() { m.Invalidate(name) })
	}
	// A change feed is the finer-grained channel: the source describes
	// each mutation, so instead of dropping everything derived from it,
	// the mediator drops only its answer cache and delta-maintains the
	// materialized views that depend on it. Every bundled mutable source
	// (OEM store, relational, record store, partitions thereof) notifies
	// here; no bundled source implements both channels for the same
	// mutation, so the two subscriptions never double-fire.
	if notifier, ok := src.(wrapper.Notifier); ok {
		notifier.OnChange(m.applyDelta)
	}
	if m.cacheCfg != nil {
		opts := *m.cacheCfg
		user := opts.Recorder
		opts.Recorder = func(source string, hit bool) {
			m.stats.RecordCache(source, hit)
			if user != nil {
				user(source, hit)
			}
		}
		cache := wrapper.NewCache(src, opts)
		m.cacheMu.Lock()
		m.caches = append(m.caches, cache)
		m.cacheMu.Unlock()
		src = cache
	}
	m.sources.Add(src)
	if m.plans != nil {
		// A replacement may advertise different capabilities; a cached
		// plan that pushed conditions into the old source would be wrong.
		m.plans.Invalidate(src.Name())
	}
}

// InvalidateCaches drops every cached source answer — call it when a
// source's data is known to have changed and Config.Cache is in use.
func (m *Mediator) InvalidateCaches() {
	dropped := 0
	m.cacheMu.Lock()
	for _, c := range m.caches {
		dropped += c.Invalidate("")
	}
	m.cacheMu.Unlock()
	metrics.Default().Counter("cache.invalidated").Add(int64(dropped))
	m.notifyListeners()
}

// Invalidate marks every cached derivation of name — answer caches and
// materialized-view extents alike — as stale, in one call. name selects:
//
//   - a source name: that source's answer cache is dropped and every
//     materialized view depending on it is marked stale;
//   - a view label (with Config.Materialize): that view's extent is
//     marked stale;
//   - "": everything.
//
// Stale extents keep serving the live-fallback path until a background
// refresh replaces them; the next contained query triggers one.
// Invalidate returns the number of view extents it marked stale.
func (m *Mediator) Invalidate(name string) int {
	dropped := 0
	m.cacheMu.Lock()
	for _, c := range m.caches {
		dropped += c.Invalidate(name)
	}
	m.cacheMu.Unlock()
	metrics.Default().Counter("cache.invalidated").Add(int64(dropped))
	if m.plans != nil {
		m.plans.Invalidate(name)
	}
	stale := 0
	if m.matviews != nil {
		stale = m.matviews.Invalidate(name)
	}
	m.notifyListeners()
	return stale
}

// OnInvalidate implements wrapper.InvalidationNotifier: fn runs after
// every Invalidate (and InvalidateCaches) on this mediator, with no
// locks held. A tier-1 mediator registers itself here when this mediator
// is added as one of its sources, making invalidation transitive up the
// mediation tiers; do not build notification cycles.
func (m *Mediator) OnInvalidate(fn func()) {
	m.notifyMu.Lock()
	m.listeners = append(m.listeners, fn)
	m.notifyMu.Unlock()
}

// notifyListeners fires the registered invalidation callbacks outside
// every mediator lock.
func (m *Mediator) notifyListeners() {
	m.notifyMu.Lock()
	fns := append([]func(){}, m.listeners...)
	m.notifyMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Refresh rebuilds the named materialized view's extent synchronously
// (label "" rebuilds all of them, in declaration order), through the
// live pipeline. A no-op without Config.Materialize. Use it to warm
// extents ahead of traffic instead of paying the build on first query.
func (m *Mediator) Refresh(ctx context.Context, label string) error {
	if m.matviews == nil {
		return nil
	}
	return m.matviews.Refresh(ctx, label)
}

// MatViewStats snapshots the materialized-view manager's counters; the
// zero value when Config.Materialize is unset.
func (m *Mediator) MatViewStats() MatViewStats {
	if m.matviews == nil {
		return MatViewStats{}
	}
	return m.matviews.Stats()
}

// MatViews returns the labels of the materialized views, in declaration
// order; empty without Config.Materialize.
func (m *Mediator) MatViews() []string {
	if m.matviews == nil {
		return nil
	}
	return m.matviews.Labels()
}

// WaitMatViews blocks until every in-flight background extent refresh
// has finished — deterministic shutdown and tests.
func (m *Mediator) WaitMatViews() {
	if m.matviews != nil {
		m.matviews.Wait()
	}
}

// CacheStats returns per-source answer-cache counters, keyed by source
// name; the map is empty when Config.Cache is unset.
func (m *Mediator) CacheStats() map[string]CacheStats {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	out := make(map[string]CacheStats, len(m.caches))
	for _, c := range m.caches {
		out[c.Name()] = c.Stats()
	}
	return out
}

// PlanCacheStats snapshots the plan cache's counters; the zero value when
// Config.PlanCache is unset.
func (m *Mediator) PlanCacheStats() PlanCacheStats {
	if m.plans == nil {
		return PlanCacheStats{}
	}
	return m.plans.Stats()
}

// Policy returns the default execution policy queries run under
// (Config.Policy); QueryPolicy overrides it per call.
func (m *Mediator) Policy() ExecPolicy { return m.policy }

// Stats exposes the mediator's learned statistics store.
func (m *Mediator) QueryStats() *Stats { return m.stats }

// Spec returns the mediator's parsed specification.
func (m *Mediator) Spec() *SpecProgram { return m.spec }

// Sources returns the names of the registered sources, sorted.
func (m *Mediator) Sources() []string { return m.sources.Names() }

type writerBuilder struct{ b []byte }

func (w *writerBuilder) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writerBuilder) WriteString(s string) { w.b = append(w.b, s...) }

func (w *writerBuilder) String() string { return string(w.b) }
