// Command cswhois walks through the MedMaker paper's running example end
// to end: the cs relational source and whois directory (Figures 2.2 and
// 2.3), the mediator specification MS1, query Q1 producing the integrated
// cs_person object of Figure 2.4, the view expansion to datamerge rule R2,
// the physical datamerge graph of Figure 3.6 with its flowing binding
// tables, and the <year 3> pushdown of Section 3.3 (unifiers τ1/τ2).
package main

import (
	"fmt"
	"log"
	"os"

	"medmaker"
	"medmaker/internal/oem"
)

const specMS1 = `
<cs_person {<name N> <relation R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).

decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
`

func main() {
	// --- The cs source: a relational database behind a wrapper. ---
	db := medmaker.NewRelationalDB()
	emp := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "employee",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor", "John Hennessy")
	stu := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "student",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	stu.MustInsert("Nick", "Naive", 3)
	cs := medmaker.NewRelationalWrapper("cs", db)

	fmt.Println("=== Figure 2.2: the OEM object structure of the cs wrapper ===")
	fmt.Print(medmaker.FormatOEM(cs.Export()...))

	// --- The whois source: irregular records behind a wrapper. ---
	store := medmaker.NewRecordStore()
	store.MustAdd(
		medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
			{Name: "name", Value: "Joe Chung"},
			{Name: "dept", Value: "CS"},
			{Name: "relation", Value: "employee"},
			{Name: "e_mail", Value: "chung@cs"},
		}},
		medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
			{Name: "name", Value: "Nick Naive"},
			{Name: "dept", Value: "CS"},
			{Name: "relation", Value: "student"},
			{Name: "year", Value: 3},
		}},
	)
	whois := medmaker.NewRecordWrapper("whois", store)

	fmt.Println("\n=== Figure 2.3: the OEM object structure of whois ===")
	fmt.Print(medmaker.FormatOEM(whois.Export()...))

	// --- The mediator med, specified declaratively by MS1. ---
	med, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    specMS1,
		Sources: []medmaker.Source{cs, whois},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Specification MS1 ===")
	fmt.Print(med.Spec().String())

	// --- Query Q1: all data for Joe Chung. ---
	q1 := `JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`
	fmt.Println("\n=== Query Q1 ===")
	fmt.Println(q1)

	fmt.Println("\n=== View expansion and plan (rule R2, Figure 3.6) ===")
	explain, err := med.Explain(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(explain)

	fmt.Println("\n=== Execution trace (the flowing binding tables of Figure 3.6) ===")
	traced, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    specMS1,
		Sources: []medmaker.Source{cs, whois},
		Trace:   os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := traced.QueryString(q1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== Figure 2.4: the integrated cs_person object ===")
	fmt.Print(medmaker.FormatOEM(result...))

	// --- Section 3.3: the year query whose condition can be pushed into
	// either source (unifiers τ1 and τ2). ---
	q3 := `S :- S:<cs_person {<year 3>}>@med.`
	fmt.Println("\n=== Section 3.3: the <year 3> pushdown query ===")
	fmt.Println(q3)
	_, logical, err := med.Plan(mustParse(q3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logical datamerge program (one rule per push choice):")
	fmt.Print(logical.String())
	years, err := med.QueryString(q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answer:")
	fmt.Print(medmaker.FormatOEM(years...))
}

func mustParse(q string) *medmaker.Rule {
	r, err := medmaker.ParseQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
