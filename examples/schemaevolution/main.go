// Command schemaevolution demonstrates the paper's schema-evolution
// claim: the mediator specification is written once against today's
// sources, the sources then change shape — attributes appear, attributes
// disappear, records turn irregular — and the same specification keeps
// working, with new attributes flowing into the integrated view
// automatically through the rest variables.
package main

import (
	"fmt"
	"log"

	"medmaker"
)

const spec = `<profile {<name N> | Rest}> :- <person {<name N> | Rest}>@hr.`

func main() {
	// Era 1: the source has a tidy, regular schema.
	hr := medmaker.NewRecordStore()
	hr.MustAdd(medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
		{Name: "name", Value: "Ann Able"},
		{Name: "dept", Value: "CS"},
		{Name: "e_mail", Value: "ann@cs"},
	}})
	med, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    spec,
		Sources: []medmaker.Source{medmaker.NewRecordWrapper("hr", hr)},
	})
	if err != nil {
		log.Fatal(err)
	}
	show := func(era string) {
		objs, err := med.QueryString(`P :- P:<profile {<name N>}>@med.`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: view through the SAME specification ===\n", era)
		fmt.Print(medmaker.FormatOEM(objs...))
		fmt.Println()
	}
	show("era 1 (regular schema)")

	// Era 2: the source grows a birthday attribute and hires someone
	// whose record has no e_mail. Nobody told the mediator.
	hr.MustAdd(medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
		{Name: "name", Value: "Bob Busy"},
		{Name: "dept", Value: "EE"},
		{Name: "birthday", Value: "June 1"}, // new attribute
		// no e_mail
	}})
	show("era 2 (birthday appeared, e_mail missing on one record)")

	// Era 3: nested structure appears — an address record.
	hr.MustAdd(medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
		{Name: "name", Value: "Cam Cool"},
		{Name: "address", Value: []medmaker.RecordField{
			{Name: "city", Value: "Palo Alto"},
			{Name: "zip", Value: "94301"},
		}},
	}})
	show("era 3 (nested address records appeared)")

	// Queries over the evolved attributes need no specification change
	// either: conditions on attributes the specification never mentioned
	// are pushed into the rest variable.
	fmt.Println("=== querying an attribute the specification never mentioned ===")
	objs, err := med.QueryString(`P :- P:<profile {<birthday B>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(medmaker.FormatOEM(objs...))
	fmt.Println()

	// And schema exploration: label variables retrieve the attribute
	// names actually in use, the tool for discovering what a changing
	// source currently looks like.
	fmt.Println("=== schema exploration with a label variable ===")
	labels, err := med.QueryString(`<attribute L> :- <profile {<L V>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range labels {
		name, _ := o.AtomString()
		fmt.Printf("  attribute in use: %s\n", name)
	}
}
