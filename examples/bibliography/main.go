// Command bibliography runs the motivating scenario from the paper's
// introduction: a mediator over bibliographic sources whose users "see a
// single collection of materials, with duplicates removed and
// inconsistencies resolved (e.g., all author names would be in the format
// last name, first name)".
//
// Two sources hold overlapping sets of papers under different labels
// (paper/article) with differently-formatted author names. The mediator
// normalizes authors through an external function and fuses the two
// records of each title into one virtual object using a semantic
// object-id: the skolem term pub(T) gives both derivations the same
// identity, and duplicate elimination on bindings does the rest.
package main

import (
	"fmt"
	"log"

	"medmaker"
	"medmaker/internal/workload"
)

const spec = `
<pub(T) publication {<title T> <author A> | R}> :-
    <paper {<title T> <author RawA> | R}>@lib_a
    AND normalize(RawA, A).

<pub(T) publication {<title T> <author A> | R}> :-
    <article {<title T> <author RawA> | R}>@lib_b
    AND normalize(RawA, A).

normalize(bound, free) by normalize_author.
`

func main() {
	bib := workload.GenBib(workload.BibConfig{Papers: 8, OverlapFraction: 0.75, Seed: 11})
	libA, err := medmaker.NewOEMSource("lib_a"), error(nil)
	if err := libA.Add(bib.SourceA...); err != nil {
		log.Fatal(err)
	}
	libB := medmaker.NewOEMSource("lib_b")
	if err = libB.Add(bib.SourceB...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source lib_a holds %d papers ('First Last' authors)\n", len(bib.SourceA))
	fmt.Printf("source lib_b holds %d articles ('Last, First' authors)\n\n", len(bib.SourceB))
	fmt.Println("sample from lib_a:")
	fmt.Print(medmaker.FormatOEM(bib.SourceA[0]))
	fmt.Println("sample from lib_b:")
	fmt.Print(medmaker.FormatOEM(bib.SourceB[0]))

	med, err := medmaker.New(medmaker.Config{
		Name:    "bib",
		Spec:    spec,
		Sources: []medmaker.Source{libA, libB},
	})
	if err != nil {
		log.Fatal(err)
	}

	objs, err := med.QueryString(`P :- P:<publication {<title T>}>@bib.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintegrated view: %d publications (duplicates fused across %d + %d source records)\n\n",
		len(objs), len(bib.SourceA), len(bib.SourceB))
	for _, o := range objs {
		title, _ := o.Sub("title").AtomString()
		author, _ := o.Sub("author").AtomString()
		fmt.Printf("  %-12s  by %-16s  (oid %s)\n", title, author, o.OID)
	}

	// The semantic oid makes the two derivations of one paper share
	// identity even though they came from different sources; query one
	// specific publication to see the fused attributes (year from lib_a,
	// area from lib_b).
	fmt.Println("\none fused publication, attributes from both sources:")
	one, err := med.QueryString(`P :- P:<publication {<title 'Paper 0000'>}>@bib.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(medmaker.FormatOEM(one...))
}
