// Command distributed runs the TSIMMIS architecture of the paper's
// Figure 1.1 over real network connections, composed the way a deployed
// federation grows: the whois population is hash-partitioned across two
// shard servers and rejoined behind one logical source, a sub-mediator
// integrates that partition with the cs wrapper, and a top mediator
// registers the served sub-mediator as just another source — wrappers,
// partitions, and mediators are interchangeable, so tiers stack. Every
// hop speaks the framed remote protocol: one multiplexed connection per
// peer, negotiated down to the lockstep protocol for old peers.
package main

import (
	"fmt"
	"log"
	"time"

	"medmaker"
	"medmaker/internal/oem"
)

// dial connects to addr and reports the negotiated wire protocol.
func dial(addr string) *medmaker.RemoteClient {
	c, err := medmaker.DialSource(addr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	proto := "lockstep"
	if c.Proto() == medmaker.ProtoFramed {
		proto = "framed (multiplexed)"
	}
	fmt.Printf("dialed %-6s at %s  protocol: %s\n", c.Name(), addr, proto)
	return c
}

func serve(src medmaker.Source) (string, *medmaker.RemoteServer) {
	addr, srv, err := medmaker.Serve(src, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return addr, srv
}

func main() {
	// --- The cs wrapper process: one relational server. ---
	db := medmaker.NewRelationalDB()
	emp := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "employee",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor")
	emp.MustInsert("Sally", "Stanford", "dean")
	csAddr, csSrv := serve(medmaker.NewRelationalWrapper("cs", db))
	defer csSrv.Close()
	fmt.Printf("wrapper cs     listening on %s\n", csAddr)

	// --- The whois tier: the same person extent hash-partitioned across
	// two shard servers by the <name> field. Each shard holds exactly the
	// people whose name hashes to it. ---
	const shards = 2
	stores := make([]*medmaker.RecordStore, shards)
	for i := range stores {
		stores[i] = medmaker.NewRecordStore()
	}
	for _, p := range []struct{ name, relation, email string }{
		{"Joe Chung", "employee", "chung@cs"},
		{"Sally Stanford", "employee", "sally@cs"},
	} {
		stores[medmaker.ShardOf(p.name, shards)].MustAdd(medmaker.Record{
			Kind: "person", Fields: []medmaker.RecordField{
				{Name: "name", Value: p.name},
				{Name: "dept", Value: "CS"},
				{Name: "relation", Value: p.relation},
				{Name: "e_mail", Value: p.email},
			}})
	}
	whoisMembers := make([]medmaker.Source, shards)
	for i, st := range stores {
		addr, srv := serve(medmaker.NewRecordWrapper(fmt.Sprintf("whois%d", i), st))
		defer srv.Close()
		fmt.Printf("shard  whois%d  listening on %s (%d records)\n", i, addr, st.Len())
		member := dial(addr)
		defer member.Close()
		whoisMembers[i] = member
	}
	// One logical whois source over the shard members: queries that bind
	// <name> route to the one shard the key hashes to; anything else
	// scatters to every member and gathers the union.
	whois, err := medmaker.NewPartitionedSource("whois", "name", whoisMembers...)
	if err != nil {
		log.Fatal(err)
	}

	// --- The sub-mediator process integrates cs and the whois partition
	// under the paper's MS1-style view, and is itself served. ---
	csRemote := dial(csAddr)
	defer csRemote.Close()
	sub, err := medmaker.New(medmaker.Config{
		Name: "sub",
		Spec: `
		<cs_person {<name N> <relation R> Rest1 Rest2}> :-
		    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
		    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
		    AND decomp(N, LN, FN).
		decomp(bound, free, free) by name_to_lnfn.`,
		Sources: []medmaker.Source{csRemote, whois},
	})
	if err != nil {
		log.Fatal(err)
	}
	subAddr, subSrv := serve(sub)
	defer subSrv.Close()
	fmt.Printf("mediator sub   listening on %s\n", subAddr)

	// --- The top mediator registers the served sub-mediator as a source:
	// a mediator over a mediator, the composed tier of Figure 1.1. ---
	subRemote := dial(subAddr)
	defer subRemote.Close()
	top, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    `<cs_person {<name N> | R}> :- <cs_person {<name N> | R}>@sub.`,
		Sources: []medmaker.Source{subRemote},
	})
	if err != nil {
		log.Fatal(err)
	}
	medAddr, medSrv := serve(top)
	defer medSrv.Close()
	app := dial(medAddr)
	defer app.Close()
	fmt.Println()

	// A point query binds <name>, so the whois leg routes to exactly one
	// shard; the answer crosses three network hops on the way back.
	point, err := medmaker.ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	objs, err := app.Query(point)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("routed point query through app -> med -> sub -> {cs, whois shard}:")
	fmt.Print(medmaker.FormatOEM(objs...))

	// A scan binds nothing, so the whois leg scatters to both shards and
	// the partition gathers the union before the join.
	scan, err := medmaker.ParseQuery(`P :- P:<cs_person {<name N>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	objs, err = app.Query(scan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscatter/gather scan over both shards:")
	fmt.Print(medmaker.FormatOEM(objs...))
}
