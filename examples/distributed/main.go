// Command distributed runs the TSIMMIS architecture of the paper's
// Figure 1.1 over real network connections: two wrapper processes (here,
// two TCP servers in the same process for convenience) export OEM, a
// mediator dials them as remote sources, and a further server exposes the
// mediator itself — mediators and wrappers are interchangeable sources.
package main

import (
	"fmt"
	"log"
	"time"

	"medmaker"
	"medmaker/internal/oem"
)

func main() {
	// --- Wrapper processes. ---
	db := medmaker.NewRelationalDB()
	emp := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "employee",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor")
	csAddr, csSrv, err := medmaker.Serve(medmaker.NewRelationalWrapper("cs", db), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer csSrv.Close()

	store := medmaker.NewRecordStore()
	store.MustAdd(medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
		{Name: "name", Value: "Joe Chung"},
		{Name: "dept", Value: "CS"},
		{Name: "relation", Value: "employee"},
		{Name: "e_mail", Value: "chung@cs"},
	}})
	whoisAddr, whoisSrv, err := medmaker.Serve(medmaker.NewRecordWrapper("whois", store), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer whoisSrv.Close()
	fmt.Printf("wrapper cs    listening on %s\n", csAddr)
	fmt.Printf("wrapper whois listening on %s\n", whoisAddr)

	// --- The mediator process dials the wrappers. ---
	csRemote, err := medmaker.DialSource(csAddr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer csRemote.Close()
	whoisRemote, err := medmaker.DialSource(whoisAddr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer whoisRemote.Close()
	fmt.Printf("mediator connected to %s and %s\n\n", csRemote.Name(), whoisRemote.Name())

	med, err := medmaker.New(medmaker.Config{
		Name: "med",
		Spec: `
		<cs_person {<name N> <relation R> Rest1 Rest2}> :-
		    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
		    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
		    AND decomp(N, LN, FN).
		decomp(bound, free, free) by name_to_lnfn.`,
		Sources: []medmaker.Source{csRemote, whoisRemote},
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- The mediator is itself served over TCP; the application dials
	// it. Queries against it are answered by querying the wrappers over
	// their own connections. ---
	medAddr, medSrv, err := medmaker.Serve(med, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer medSrv.Close()
	app, err := medmaker.DialSource(medAddr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	fmt.Printf("mediator %s listening on %s\n\n", app.Name(), medAddr)

	q, err := medmaker.ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	objs, err := app.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application received over the wire:")
	fmt.Print(medmaker.FormatOEM(objs...))
}
