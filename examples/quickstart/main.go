// Command quickstart is the smallest complete MedMaker program: one OEM
// source, a one-rule mediator specification, and one query.
package main

import (
	"fmt"
	"log"

	"medmaker"
)

func main() {
	// 1. A source. Any wrapper will do; here the data is already OEM.
	people, err := medmaker.NewOEMSourceFromText("people", `
	    <person, set, {<name, 'Ann Able'>,   <dept, 'CS'>, <office, 'Gates 101'>}>
	    <person, set, {<name, 'Bob Busy'>,   <dept, 'EE'>}>
	    <person, set, {<name, 'Cam Cool'>,   <dept, 'CS'>, <e_mail, 'cam@cs'>}>
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A mediator: a declarative view over the source. The rest
	// variable R keeps the view insensitive to schema evolution — any
	// attribute a person record happens to carry flows through.
	med, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    `<cs_staff {<name N> | R}> :- <person {<name N> <dept 'CS'> | R}>@people.`,
		Sources: []medmaker.Source{people},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A query against the view, in the same language.
	objs, err := med.QueryString(`X :- X:<cs_staff {<name N>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cs_staff view:")
	fmt.Print(medmaker.FormatOEM(objs...))

	// The same question in the LOREL end-user syntax.
	rows, err := med.QueryLorel(`select X.name from med.cs_staff X`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvia LOREL (select X.name from med.cs_staff X):")
	fmt.Print(medmaker.FormatOEM(rows...))

	// Bonus: how the mediator answered — the logical datamerge program
	// and the physical datamerge graph.
	explain, err := med.Explain(`X :- X:<cs_staff {<name N>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(explain)
}
