// Command federation composes the heterogeneous source tier under one
// declarative specification: the same mediator integrates
//
//   - a staff catalog that arrived as an XML document (the XML wrapper
//     maps elements to OEM objects and pushes conditions into its label
//     index),
//   - a contact service spoken to over JSON/HTTP (the wrapper speaks the
//     bundled JSON wire format and pushes equality conditions into query
//     parameters when the plan allows),
//   - a live badge-swipe event log (a bounded append-only stream that
//     emits change-feed deltas),
//   - and a payroll table in a relational database,
//
// fusing per-person fragments from all four with semantic object-ids.
// The end of the run appends a swipe while the mediator is live and shows
// the next query observing it — stream sources are always read fresh.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"medmaker"
	"medmaker/internal/oem"
)

// The catalog source: an XML document, as exported by some other system.
const catalogXML = `<oem>
  <person><name>Joe Chung</name><dept>CS</dept></person>
  <person><name>Ann Able</name><dept>CS</dept></person>
  <person><name>Bob Busy</name><dept>EE</dept></person>
</oem>`

// The federation spec: one staff_record object per person, fused across
// the four sources by the skolem object-id staff(N).
const spec = `
<staff(N) staff_record {<name N> <dept D> | Rest}> :-
    <person {<name N> <dept D>}>@catalog
    AND <contact {<name N> | Rest}>@web.

<staff(N) staff_record {<name N> <title T>}> :-
    <person {<name N>}>@catalog
    AND <employee {<name N> <title T>}>@cs.

<staff(N) staff_record {<name N> <seen_at G>}> :-
    <swipe {<name N> <gate G>}>@events.
`

func main() {
	// --- catalog: the XML wrapper over the document above. ---
	catalog, err := medmaker.NewXMLSource("catalog", mustDecode(catalogXML))
	if err != nil {
		log.Fatal(err)
	}

	// --- web: a JSON-over-HTTP contact service on loopback. ---
	contacts := []*medmaker.Object{
		oem.NewSet("", "contact",
			oem.New("", "name", "Joe Chung"), oem.New("", "e_mail", "joe@cs"), oem.New("", "room", 252)),
		oem.NewSet("", "contact",
			oem.New("", "name", "Ann Able"), oem.New("", "e_mail", "ann@cs")),
	}
	srv := httptest.NewServer(medmaker.NewHTTPHandler(contacts))
	defer srv.Close()
	web, err := medmaker.NewHTTPSource("web", srv.URL)
	if err != nil {
		log.Fatal(err)
	}

	// --- events: a bounded badge-swipe log. ---
	events := medmaker.NewStreamSource("events", medmaker.StreamOptions{MaxEvents: 8})
	if err := events.Append(
		oem.NewSet("", "swipe", oem.New("", "name", "Joe Chung"), oem.New("", "gate", "east")),
	); err != nil {
		log.Fatal(err)
	}

	// --- cs: the payroll table. ---
	db := medmaker.NewRelationalDB()
	emp := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "employee",
		Columns: []medmaker.RelationalColumn{
			{Name: "name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe Chung", "professor")
	emp.MustInsert("Ann Able", "lecturer")
	cs := medmaker.NewRelationalWrapper("cs", db)

	// --- one mediator over all four. ---
	med, err := medmaker.New(medmaker.Config{
		Name: "med", Spec: spec,
		Sources: []medmaker.Source{catalog, web, events, cs},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== the federated staff_record view (XML + HTTP + stream + relational) ===")
	all := `X :- X:<staff_record {<name N>}>@med.`
	answer(med, all)
	fmt.Printf("contact records transferred over HTTP: %d (in %d requests)\n\n",
		web.Transferred(), web.Requests())

	fmt.Println("=== selective query against the fused view ===")
	answer(med, `X :- X:<staff_record {<name 'Joe Chung'>}>@med.`)

	fmt.Println("=== a swipe lands while the mediator is live ===")
	if err := events.Append(
		oem.NewSet("", "swipe", oem.New("", "name", "Ann Able"), oem.New("", "gate", "west")),
	); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event log now holds %d of %d appended events (bounded retention)\n",
		events.Len(), events.Appended())
	answer(med, all)
}

// answer prints the query and its integrated result objects.
func answer(med *medmaker.Mediator, q string) {
	fmt.Println("query:", q)
	objs, err := med.QueryString(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(medmaker.FormatOEM(objs...))
	fmt.Println()
}

// mustDecode maps the XML document to OEM objects.
func mustDecode(doc string) []*medmaker.Object {
	objs, err := medmaker.DecodeXML(strings.NewReader(doc), medmaker.XMLMapping{})
	if err != nil {
		log.Fatal(err)
	}
	return objs
}
