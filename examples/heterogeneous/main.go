// Command heterogeneous is the thesis of the MedMaker paper in one
// program: a single declarative specification integrates four sources
// with four different shapes —
//
//   - an HR directory that arrived as a JSON export,
//   - a payroll database loaded from CSV files (relational),
//   - a facilities list already in the OEM text format,
//   - and a badge service running as a separate wrapper behind TCP —
//
// into one "staff_record" view, fusing per-person fragments with semantic
// object-ids and normalizing name formats with an external predicate.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"medmaker"
)

const hrJSON = `[
  {"name": "Joe Chung",  "dept": "CS", "title": "professor", "emails": ["joe@cs", "chung@cs"]},
  {"name": "Ann Able",   "dept": "CS", "title": "lecturer"},
  {"name": "Bob Busy",   "dept": "EE", "title": "staff", "note": "on leave"}
]`

const payrollCSV = `last_name,first_name,salary,grade
Chung,Joe,120000,7
Able,Ann,90000,5
Busy,Bob,70000,4
`

const facilitiesOEM = `
<office, set, {<occupant, 'Joe Chung'>, <room, 'Gates 401'>}>
<office, set, {<occupant, 'Ann Able'>, <room, 'Gates 120'>, <shared, true>}>
`

const spec = `
# Fragment 1: identity and title from HR (JSON).
<person(N) staff_record {<name N> | R}> :-
    <employee {<name N> <dept 'CS'> | R}>@hr.

# Fragment 2: salary from payroll (CSV), names arriving split.
<person(N) staff_record {<name N> <salary S>}> :-
    <payroll {<last_name LN> <first_name FN> <salary S>}>@payroll
    AND decomp(N, LN, FN).

# Fragment 3: office from facilities (OEM text).
<person(N) staff_record {<name N> <office Room>}> :-
    <office {<occupant N> <room Room>}>@facilities.

# Fragment 4: badge number from the remote badge service (TCP).
<person(N) staff_record {<name N> <badge B>}> :-
    <badge {<holder N> <number B>}>@badges.

decomp(free, bound, bound) by lnfn_to_name.
`

func main() {
	// Source 1: HR, from JSON.
	hr, err := medmaker.NewOEMSourceFromJSON("hr", "employee", []byte(hrJSON))
	if err != nil {
		log.Fatal(err)
	}

	// Source 2: payroll, from CSV behind the relational engine. The
	// table is named "payroll".
	db := medmaker.NewRelationalDB()
	if err := medmaker.LoadCSV(db, "payroll", strings.NewReader(payrollCSV)); err != nil {
		log.Fatal(err)
	}
	payroll := medmaker.NewRelationalWrapper("payroll", db)

	// Source 3: facilities, from OEM text.
	facilities, err := medmaker.NewOEMSourceFromText("facilities", facilitiesOEM)
	if err != nil {
		log.Fatal(err)
	}

	// Source 4: the badge service, a wrapper running behind TCP.
	badgeData, err := medmaker.NewOEMSourceFromText("badges", `
	    <badge, set, {<holder, 'Joe Chung'>, <number, 1001>}>
	    <badge, set, {<holder, 'Ann Able'>, <number, 1002>}>`)
	if err != nil {
		log.Fatal(err)
	}
	addr, srv, err := medmaker.Serve(badgeData, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	badges, err := medmaker.DialSource(addr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer badges.Close()
	fmt.Printf("badge service online at %s\n\n", addr)

	med, err := medmaker.New(medmaker.Config{
		Name:    "staff",
		Spec:    spec,
		Sources: []medmaker.Source{hr, payroll, facilities, badges},
	})
	if err != nil {
		log.Fatal(err)
	}

	objs, err := med.QueryString(`P :- P:<staff_record {<name N>}>@staff.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated staff_record view (%d people, fragments fused by person(N)):\n\n", len(objs))
	fmt.Print(medmaker.FormatOEM(objs...))

	// One selective question across all four formats at once.
	fmt.Println("\nwho in a Gates office earns over 100000?")
	rich, err := med.QueryLorel(`
	    select X.name, X.office, X.salary
	    from staff.staff_record X
	    where X.salary > 100000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(medmaker.FormatOEM(rich...))
}
