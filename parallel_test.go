package medmaker

import (
	"fmt"
	"strings"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// TestParallelMatchesSequential checks that parallel execution returns
// exactly the sequential results, in the same order, for every plan
// variant.
func TestParallelMatchesSequential(t *testing.T) {
	queries := []string{
		`P :- P:<cs_person {<name N>}>@med.`,
		`S :- S:<cs_person {<year 3>}>@med.`,
	}
	variants := []PlanOptions{
		{Order: OrderHeuristic, PushConditions: true, Parameterize: true, DupElim: true},
		{Order: OrderHeuristic, PushConditions: true, Parameterize: false, DupElim: true},
		{Order: OrderReversed, PushConditions: false, Parameterize: true, DupElim: true},
	}
	cs, whois, _ := scaledSources(t, 80)
	for vi, opts := range variants {
		o := opts
		seq, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{cs, whois}, Plan: &o, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{cs, whois}, Plan: &o, Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			a, err := seq.QueryString(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.QueryString(q)
			if err != nil {
				t.Fatalf("variant %d query %d parallel: %v", vi, qi, err)
			}
			if len(a) != len(b) {
				t.Fatalf("variant %d query %d: sequential %d objects, parallel %d", vi, qi, len(a), len(b))
			}
			for i := range a {
				if !a[i].StructuralEqual(b[i]) {
					t.Fatalf("variant %d query %d: result %d differs:\n%s\nvs\n%s",
						vi, qi, i, oem.Format(a[i]), oem.Format(b[i]))
				}
			}
		}
	}
}

// TestExecutionModesMatchSequential is the differential check for the
// batched/cached/pipelined executor: for every plan variant and every
// combination of the new knobs, results must be structurally identical to
// the plain sequential per-tuple path, in the same order. Each cached
// mediator runs its queries twice so the second pass exercises cache hits.
func TestExecutionModesMatchSequential(t *testing.T) {
	queries := []string{
		`P :- P:<cs_person {<name N>}>@med.`,
		`S :- S:<cs_person {<year 3>}>@med.`,
	}
	variants := []PlanOptions{
		{Order: OrderHeuristic, PushConditions: true, Parameterize: true, DupElim: true},
		{Order: OrderHeuristic, PushConditions: true, Parameterize: false, DupElim: true},
		{Order: OrderReversed, PushConditions: false, Parameterize: true, DupElim: true},
	}
	modes := []struct {
		name string
		mk   func(o *PlanOptions) Config
	}{
		{"batched", func(o *PlanOptions) Config {
			return Config{Plan: o} // QueryBatch 0 -> DefaultQueryBatch
		}},
		{"batched+cached", func(o *PlanOptions) Config {
			return Config{Plan: o, Cache: &CacheOptions{}}
		}},
		{"pipelined", func(o *PlanOptions) Config {
			return Config{Plan: o, QueryBatch: 1, Pipeline: true, Parallelism: 8}
		}},
		{"batched+cached+pipelined", func(o *PlanOptions) Config {
			return Config{Plan: o, Cache: &CacheOptions{}, Pipeline: true, Parallelism: 8}
		}},
	}
	cs, whois, _ := scaledSources(t, 80)
	for vi, opts := range variants {
		o := opts
		seq, err := New(Config{
			Name: "med", Spec: specMS1, Sources: []Source{cs, whois},
			Plan: &o, QueryBatch: 1, Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes {
			cfg := mode.mk(&o)
			cfg.Name, cfg.Spec, cfg.Sources = "med", specMS1, []Source{cs, whois}
			med, err := New(cfg)
			if err != nil {
				t.Fatalf("variant %d mode %s: %v", vi, mode.name, err)
			}
			for qi, q := range queries {
				want, err := seq.QueryString(q)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ {
					got, err := med.QueryString(q)
					if err != nil {
						t.Fatalf("variant %d mode %s query %d pass %d: %v", vi, mode.name, qi, pass, err)
					}
					if len(want) != len(got) {
						t.Fatalf("variant %d mode %s query %d pass %d: sequential %d objects, %s %d",
							vi, mode.name, qi, pass, len(want), mode.name, len(got))
					}
					for i := range want {
						if !want[i].StructuralEqual(got[i]) {
							t.Fatalf("variant %d mode %s query %d pass %d: result %d differs:\n%s\nvs\n%s",
								vi, mode.name, qi, pass, i, oem.Format(want[i]), oem.Format(got[i]))
						}
					}
				}
			}
		}
	}
}

// failingSource errors on every query.
type failingSource struct{ name string }

func (f *failingSource) Name() string               { return f.name }
func (f *failingSource) Capabilities() Capabilities { return FullCapabilities() }
func (f *failingSource) Query(*msl.Rule) ([]*Object, error) {
	return nil, fmt.Errorf("source %s is down", f.name)
}

// TestParallelErrorPropagation: a failing source fails the whole parallel
// run rather than hanging or dropping rows.
func TestParallelErrorPropagation(t *testing.T) {
	cs, whois, _ := scaledSources(t, 20)
	med, err := New(Config{
		Name: "med",
		Spec: `<out {<name N> <fn FN>}> :-
		    <person {<name N> <relation R>}>@whois AND <R {<first_name FN>}>@broken.`,
		Sources:     []Source{cs, whois, &failingSource{name: "broken"}},
		Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.QueryString(`X :- X:<out {<name N>}>@med.`); err == nil ||
		!strings.Contains(err.Error(), "is down") {
		t.Fatalf("failing source error: %v", err)
	}
}

// BenchmarkRemoteParallelism measures the fan-out win over TCP wrappers,
// where per-tuple parameterized queries are latency-bound: the pooled
// remote client lets the engine keep several queries in flight.
func BenchmarkRemoteParallelism(b *testing.B) {
	cs, whois, _ := scaledSources(b, 200)
	csAddr, csSrv, err := Serve(cs, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer csSrv.Close()
	whoisAddr, whoisSrv, err := Serve(whois, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer whoisSrv.Close()
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			csR, err := DialSource(csAddr, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer csR.Close()
			whoisR, err := DialSource(whoisAddr, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer whoisR.Close()
			med, err := New(Config{
				Name: "med", Spec: specMS1,
				Sources:     []Source{csR, whoisR},
				Parallelism: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			q := `P :- P:<cs_person {<name N>}>@med.`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, q, 1)
			}
		})
	}
}

// BenchmarkParallelism measures the fan-out win on the full-view query,
// whose inner parameterized queries are independent per person.
func BenchmarkParallelism(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cs, whois, _ := scaledSources(b, 400)
			med, err := New(Config{
				Name: "med", Spec: specMS1,
				Sources:     []Source{cs, whois},
				Parallelism: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			q := `P :- P:<cs_person {<name N>}>@med.`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, q, 1)
			}
		})
	}
}
